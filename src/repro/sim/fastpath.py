"""Batched event fast path: a tiered shadow-filter kernel.

``_drive`` (repro.sim.driver) normally pays a full Python call into
``System.access`` for every reference.  This module collapses the
guaranteed-trivial ones into tight loops with no calls, no flag
decoding and no per-event counter bumps, while staying *bit-identical*
to the reference loop.  Two retirement tiers cover the two regimes the
paper cares about:

* **Tier 1 -- L1 hits** (PR 5): runs of trivial L1 hits, the ~90%+ of
  events on cache-resident streams.
* **Tier 2 -- vault / NUCA-bank hits**: the *L1-miss-but-LLC-hit*
  events that dominate the paper's scale-out suite (server working
  sets live in the stacked-DRAM tier, Sec. II), retired per event
  without the ``System.access`` walk.

Tier-1 safe-set invariant
-------------------------
Per core, a single ``safe_map`` dict holds every event key that is
guaranteed to be a trivial L1 hit.  An event key fuses the block
number with the event kind -- ``block << 2 | kind`` where kind 0 is a
data read, 1 a data write and 2 an ifetch, exactly the trace's flag
bits -- so the driver can pre-encode one key lane per trace and the
kernel can classify a whole chunk with a single C-level
``map(safe_map.get, keys)``:

* ``block << 2`` (L1-D): block resident in any valid state.  A data
  read is then a guaranteed hit whose only side effects are the LRU
  recency touch and the L1 counter bump.
* ``block << 2 | 1`` (L1-D): block resident in state MODIFIED.  Only
  then is a data write side-effect-free (any other state runs the
  write-upgrade machinery: peer invalidations, directory updates).
* ``block << 2 | 2`` (L1-I): block resident; ifetches never write, so
  residency alone makes them safe.

Tier-2 safe-set invariant
-------------------------
A second map (``safe2``) keys the events that are guaranteed to be
*local-LLC hits* whose side effects the kernel can replay exactly.
Tier 2 is probed only after tier 1 misses, so a tier-2 hit implies the
block is not L1-resident (for that kind) -- which is what makes the
reference path predictable.

SILO (one ``safe2`` per core, value = the vault coherence state):

* read / ifetch keys: block resident in the core's vault, any state.
  The reference path is ``vault.lookup`` -> ``llc_latency``, one
  ``llc_accesses`` bump, and an L1 fill with the vault state.
* write keys: vault state MODIFIED only.  Writes on E run the silent
  upgrade, on S/O the peer-invalidation machinery -- both stay slow.
  Soundness leans on a protocol invariant (asserted in verify mode):
  without an L2, whenever L1-D and vault both hold a block their
  states are equal, so a write reaching the tier-2 probe (tier-1 miss
  = no L1-D line in M) cannot be an L1 write-upgrade in disguise.

Shared NUCA (one system-wide ``safe2``, value = the home bank's set
dict, which doubles as the LRU-replay handle):

* ifetch keys: block resident in its home bank.
* read keys: additionally no L1 owner (an owned block -- even a clean
  E grant -- takes the owner-forward path).
* write keys: additionally no sharers at all (any sharer makes the
  fill run peer invalidations).

The maps are *soundness only*: a missing key merely falls back to the
slow path (which IS the reference path), but a stale entry would
corrupt results.  Every mutation therefore notifies a view --
``SetAssocCache`` (L1s and NUCA banks), ``VaultCache`` and
``SharerTable`` all carry hooks, and ``System`` only ever mutates
their contents through those methods (verified by
``tests/test_fastpath.py`` and, at runtime, by
``REPRO_FASTPATH=verify``).

Bit-exactness rules
-------------------
Integer counters commute, so the kernel batches them and flushes per
chunk.  Float accumulators do not (IEEE addition is order-sensitive):
the clock advances through the *same sequence* of ``t += cpi_ev`` /
``t += lat * lat_mul`` additions as the reference loop (long tier-1
streaks drain through a C-level ``itertools.accumulate``), and
latency sums / histograms are updated per retired tier-2 event in
order.  Tier-2 stall terms are precomputed as a vectorized lane
(``lat * lat_mul`` in float64, the identical IEEE operation) by
:meth:`repro.sim.driver.EventLanes.tier2_lanes`.  Tier-2 retirement
does mutate L1 state (fills, evictions), so *pre-classifying* a span
of events is impossible beyond tier 1 -- the mixed regime dispatches
per event, while long tier-1 streaks still use the wide batch scan.

Disqualification and bail-out
-----------------------------
Prefetchers, fault injection, event tracing and sharing classification
all hang per-event side effects off the hit paths, so any of them
disables the kernel for the whole system (``kernel_for`` returns None)
and those configurations run the reference loop byte-for-byte.
Tier 2 additionally requires a 2-level hierarchy (an L2 intercepts the
LLC path) and, for the shared org, no victim replication (replica
probes precede the home-bank lookup); disqualified systems keep the
tier-1 kernel with the stricter PR 5 bail thresholds.  At runtime the
filter self-monitors: workloads whose *combined* retired fraction
cannot amortize the shadow bookkeeping make it *bail out* -- detach
every hook and run the reference loop for the rest of the run -- and
record a :attr:`ShadowFilter.bail_reason` (tier fractions, threshold,
decision point) so suite-parity results are diagnosable.  Bailing,
like every other kernel decision, changes throughput only -- never
results.

Configuration
-------------
``$REPRO_FASTPATH`` = ``on`` (default) / ``off`` / ``verify`` (run the
kernel but cross-check the tier-1 maps against the real L1s after
every slow-path event and the tier-2 maps against the vaults / banks /
sharer table after every retired chunk).  :func:`use_fastpath`
installs an ambient override (the CLI's ``--no-fastpath``); the run
engine records the resolved value in ``RunRequest.fastpath`` so
provenance keys capture it -- the *results* are identical either way,
only throughput differs.
"""

import os
from collections import deque
from contextlib import contextmanager
from itertools import accumulate, repeat
from types import MappingProxyType

import numpy as np

from repro.coherence.sharer_table import SharerTable
from repro.coherence.states import SHARED, EXCLUSIVE, OWNED, MODIFIED
from repro.cores.perf_model import LEVEL_L1, LEVEL_LLC_LOCAL
from repro.obs.stats import Group
from repro.sim.config import LLC_SHARED, LLC_PRIVATE_VAULT

#: Recognized $REPRO_FASTPATH spellings.
_ON = frozenset(("", "1", "on", "true", "yes"))
_OFF = frozenset(("0", "off", "false", "no"))

_NO_OWNER = SharerTable.NO_OWNER

#: Shared placeholder probed when a system has no tier 2: an empty
#: read-only mapping whose ``get`` classifies every event as
#: not-tier-2 at C speed (immutable, so safe at module scope).
_NO_TIER2 = MappingProxyType({})


def mode_from_env():
    """The fast-path mode from ``$REPRO_FASTPATH``: 'on', 'off' or
    'verify' (unset means 'on')."""
    raw = os.environ.get("REPRO_FASTPATH", "").strip().lower()
    if raw in _ON:
        return "on"
    if raw in _OFF:
        return "off"
    if raw == "verify":
        return "verify"
    raise ValueError("REPRO_FASTPATH must be on/off/verify, got %r"
                     % raw)


_override = None


def default_enabled():
    """Ambient fast-path default for new Systems/RunRequests: the
    :func:`use_fastpath` override when one is installed, else
    ``$REPRO_FASTPATH`` (on unless explicitly 'off')."""
    if _override is not None:
        return _override
    return mode_from_env() != "off"


@contextmanager
def use_fastpath(enabled):
    """Install an ambient fast-path on/off override for the block (the
    CLI wraps experiments in this for ``--no-fastpath``)."""
    global _override
    prev = _override
    _override = bool(enabled)
    try:
        yield
    finally:
        _override = prev


class ShadowDivergence(AssertionError):
    """The shadow filter disagrees with the real cache/directory
    contents (REPRO_FASTPATH=verify): a mutation path failed to
    notify."""


class ShadowView:
    """Tier-1 shadow of one L1 feeding the core's shared ``safe_map``
    (event key -> the set dict holding the block; see the module
    docstring for the key encoding).  The L1-D view owns the read
    (kind 0) and write (kind 1) keys, the L1-I view the ifetch (kind
    2) keys.  Fed by the owning
    :class:`~repro.caches.sram_cache.SetAssocCache`'s notification
    hooks."""

    __slots__ = ("safe_map", "ifetch")

    def __init__(self, cache, safe_map, ifetch):
        self.safe_map = safe_map
        self.ifetch = ifetch
        # Adopt whatever is already resident (the filter may be built
        # against a warm system, e.g. between warmup and measure).
        for entries in cache._sets:
            for block, state in entries.items():
                self.note(block, state, entries)

    def note(self, block, state, entries):
        """The cache inserted ``block`` into ``entries`` (or changed
        its state)."""
        key = block << 2
        m = self.safe_map
        if self.ifetch:
            m[key | 2] = entries
            return
        m[key] = entries
        if state == MODIFIED:
            m[key | 1] = entries
        else:
            m.pop(key | 1, None)

    def fill(self, block, state, entries, vblock):
        """The cache evicted ``vblock`` (None when nothing was
        displaced) and inserted ``block`` in one fill.  Fused
        drop+note: miss-path inserts fire exactly one hook call --
        the split pair was a measurable tax on miss-bound
        workloads."""
        m = self.safe_map
        key = block << 2
        if self.ifetch:
            if vblock is not None:
                m.pop(vblock << 2 | 2, None)
            m[key | 2] = entries
            return
        if vblock is not None:
            vkey = vblock << 2
            m.pop(vkey, None)
            m.pop(vkey | 1, None)
        m[key] = entries
        if state == MODIFIED:
            m[key | 1] = entries
        else:
            m.pop(key | 1, None)

    def drop(self, block):
        """The cache evicted or invalidated ``block``."""
        key = block << 2
        m = self.safe_map
        if self.ifetch:
            m.pop(key | 2, None)
        else:
            m.pop(key, None)
            m.pop(key | 1, None)

    def wipe(self):
        """The cache was cleared wholesale.  Only this view's kinds
        die -- the safe_map is shared with the core's other L1."""
        m = self.safe_map
        if self.ifetch:
            dead = [k for k in m if k & 3 == 2]
        else:
            dead = [k for k in m if k & 3 != 2]
        for k in dead:
            del m[k]


class VaultShadow:
    """Tier-2 shadow of one core's vault feeding its ``safe2`` map
    (event key -> vault coherence state; see the module docstring for
    which kinds require which states).  Fed by
    :class:`~repro.caches.vault_cache.VaultCache`'s notification
    hooks."""

    __slots__ = ("safe2",)

    def __init__(self, vault, safe2):
        self.safe2 = safe2
        # Adopt whatever is already resident (warm build); a cold
        # vault skips the tag-array scan entirely.
        if vault.resident:
            for block, state in vault.blocks():
                self.note(block, state)

    def note(self, block, state):
        """The vault filled ``block`` (or changed its state)."""
        key = block << 2
        m = self.safe2
        m[key] = state
        m[key | 2] = state
        if state == MODIFIED:
            m[key | 1] = MODIFIED
        else:
            m.pop(key | 1, None)

    def fill(self, block, state, vblock):
        """The vault evicted ``vblock`` (None for a cold set) and
        filled ``block`` in one direct-mapped fill -- fused
        drop+note, one hook call per vault insert."""
        m = self.safe2
        if vblock is not None:
            vkey = vblock << 2
            m.pop(vkey, None)
            m.pop(vkey | 1, None)
            m.pop(vkey | 2, None)
        key = block << 2
        m[key] = state
        m[key | 2] = state
        if state == MODIFIED:
            m[key | 1] = MODIFIED
        else:
            m.pop(key | 1, None)

    def drop(self, block):
        """The vault evicted or invalidated ``block``."""
        key = block << 2
        m = self.safe2
        m.pop(key, None)
        m.pop(key | 1, None)
        m.pop(key | 2, None)

    def wipe(self):
        """The vault was cleared wholesale (this map is per-vault)."""
        self.safe2.clear()


class BankShadow:
    """Tier-2 shadow of one NUCA bank feeding the system-wide
    ``safe2`` map (event key -> the home bank's set dict).  Residency
    transitions arrive through the bank's own
    :class:`~repro.caches.sram_cache.SetAssocCache` hooks; the read
    and write keys additionally require the sharer table's no-owner /
    no-sharer conditions (re-derived by :class:`TableShadow` when
    sharing vectors change without a bank access)."""

    __slots__ = ("safe2", "table_entries", "num_banks", "index")

    def __init__(self, bank, table, safe2, num_banks, index):
        self.safe2 = safe2
        self.table_entries = table._entries
        self.num_banks = num_banks
        self.index = index
        for entries in bank._sets:
            for block, state in entries.items():
                self.note(block, state, entries)

    def note(self, block, state, entries):
        """The bank inserted ``block`` into ``entries`` (or changed
        its dirty flag -- irrelevant to safety, but the re-derivation
        is harmless)."""
        m = self.safe2
        key = block << 2
        m[key | 2] = entries
        e = self.table_entries.get(block)
        if e is None:
            # no sharers, no owner: reads and writes are both trivial
            m[key] = entries
            m[key | 1] = entries
        else:
            # a sharer entry exists => mask != 0 => writes unsafe
            if e[1] == _NO_OWNER:
                m[key] = entries
            else:
                m.pop(key, None)
            m.pop(key | 1, None)

    def fill(self, block, state, entries, vblock):
        """The bank evicted ``vblock`` (None when nothing was
        displaced) and inserted ``block`` in one fill -- fused
        drop+note, one hook call per bank insert."""
        m = self.safe2
        if vblock is not None:
            vkey = vblock << 2
            m.pop(vkey, None)
            m.pop(vkey | 1, None)
            m.pop(vkey | 2, None)
        key = block << 2
        m[key | 2] = entries
        e = self.table_entries.get(block)
        if e is None:
            m[key] = entries
            m[key | 1] = entries
        else:
            if e[1] == _NO_OWNER:
                m[key] = entries
            else:
                m.pop(key, None)
            m.pop(key | 1, None)

    def drop(self, block):
        """The bank evicted or invalidated ``block``."""
        key = block << 2
        m = self.safe2
        m.pop(key, None)
        m.pop(key | 1, None)
        m.pop(key | 2, None)

    def wipe(self):
        """The bank was cleared wholesale.  Only this bank's blocks
        die -- the safe2 map is shared across banks, and a block's
        home bank is fixed by address interleave."""
        nb = self.num_banks
        idx = self.index
        m = self.safe2
        dead = [k for k in m if (k >> 2) % nb == idx]
        for k in dead:
            del m[k]


class TableShadow:
    """Sharer-table hook for the tier-2 NUCA map: when a block's
    sharing vector changes (L1 fills, evictions, downgrades), its read
    and write keys are recomputed against the unchanged home-bank
    residency.  Fed by
    :class:`~repro.coherence.sharer_table.SharerTable`."""

    __slots__ = ("safe2", "llc")

    def __init__(self, llc, safe2):
        self.safe2 = safe2
        self.llc = llc

    def on_entry(self, block, mask, owner):
        """``block``'s sharing entry is now (mask, owner) -- (0,
        NO_OWNER) when it was deleted."""
        entries = self.llc.home_entries(block)
        m = self.safe2
        key = block << 2
        if block in entries:
            if owner == _NO_OWNER:
                m[key] = entries
            else:
                m.pop(key, None)
            if mask == 0:
                m[key | 1] = entries
            else:
                m.pop(key | 1, None)
        else:
            m.pop(key, None)
            m.pop(key | 1, None)


#: Events driven before the kernel decides whether to keep running.
PROBATION_EVENTS = 128_000
#: Minimum retired fraction for a tier-1-only kernel to stay enabled:
#: below this, safe streaks are too short for batching to beat its own
#: bookkeeping (short-streak scans plus shadow-hook costs on the miss
#: path), so the kernel bails out for the rest of the run.
RETIRE_MIN = 0.95
#: A clearly miss-bound workload is recognized sooner, before the
#: full probation window has paid its overhead.  The early threshold
#: is deliberately loose: a hit-dominated workload still filling cold
#: caches retires well above it, while LLC-stressing suites sit far
#: below.
EARLY_PROBATION_EVENTS = 32_000
EARLY_RETIRE_MIN = 0.75
#: With tier 2 available, per-event dispatch replaces the wide scan in
#: mixed regimes, so much lower combined fractions still pay: the
#: thresholds only need to exclude runs dominated by true misses and
#: coherence traffic (where shadow-hook costs on the slow path buy
#: nothing).
TIER2_RETIRE_MIN = 0.50
TIER2_EARLY_RETIRE_MIN = 0.35


class ShadowFilter:
    """Per-system shadow of every core's L1-D/L1-I (tier 1) plus the
    local-LLC tier (per-core vaults under SILO, the banked NUCA +
    sharer table under the shared org) and the batch kernel that
    retires safe streaks against them.

    The filter self-monitors: after :data:`PROBATION_EVENTS` driven
    events it compares the combined retired fraction against the
    tier-appropriate minimum and, in regimes where batching cannot pay
    for itself, *bails out* -- detaches every shadow hook and tells
    the driver to run the reference loop for the rest of the run,
    recording why in :attr:`bail_reason`.  Bailing is pure throughput
    policy: the kernel is semantically transparent, so results are
    bit-identical whether it retires everything, nothing, or bails
    halfway through.
    """

    def __init__(self, system):
        self.num_cores = system.num_cores
        self.verify_mode = False
        #: Kernel disabled itself (miss-heavy workload); permanent
        #: for this system.
        self.bailed = False
        #: Why the kernel bailed (stage, per-tier fractions, the
        #: threshold it missed, the decision point); None while
        #: running.  Surfaced through :meth:`summary` into manifests,
        #: telemetry and the profiler.
        self.bail_reason = None
        #: Optional zero-arg callback fired by :meth:`bail` (the
        #: profiler counts mid-run bail-outs through this; the reason
        #: is read back from :attr:`bail_reason`).
        self.on_bail = None
        self._decided = False
        # Probation accounting: chunks that start before a core's
        # floor position (the trace's prewarm prefix, see
        # :meth:`set_probation_floor`) do not count toward the
        # bail-out decision -- the one-touch prefix is deliberately
        # miss-heavy, and judging the kernel on it would condemn
        # every workload whose steady state retires fine.
        self._floor = [0] * system.num_cores
        self._p_total = 0
        self._p_retired = 0
        self._p_t1 = 0
        self._p_t2 = 0
        #: Events retired by the kernel (all tiers).
        self.retired_events = 0
        #: Events retired as trivial L1 hits (tier 1).
        self.tier1_retired = 0
        #: Events retired as local vault/NUCA-bank hits (tier 2).
        self.tier2_retired = 0
        #: Safe streaks retired (>= 1 event each; a streak may mix
        #: tiers -- it ends at the first slow-path event).
        self.streaks = 0
        #: Events driven through ``_drive`` while the kernel was active
        #: (retired + slow-path).
        self.total_events = 0
        self._system = system
        self._l1d = system.l1d
        self._l1i = system.l1i
        self._lanes = []
        #: Per-core adaptive scan window: grows into the C-level batch
        #: scan on long tier-1 streaks, shrinks to the per-event mixed
        #: dispatch in miss-heavy regimes where wide scans would be
        #: wasted work.
        self._win = []
        for c in range(system.num_cores):
            safe_map = {}
            dview = ShadowView(system.l1d[c], safe_map, False)
            iview = ShadowView(system.l1i[c], safe_map, True)
            system.l1d[c].shadow = dview
            system.l1i[c].shadow = iview
            core = system.cores[c]
            self._lanes.append((
                safe_map,
                system.l1d[c]._reorder, system.l1i[c]._reorder,
                core.data_count, core.ifetch_count))
            self._win.append(16)
        #: Which tier-2 shadow this system runs: "vault" (SILO),
        #: "nuca" (shared org) or None (L2 present / victim
        #: replication: tier-1 only, PR 5 thresholds).
        self.tier2 = None
        self._t2maps = None
        self._vaults = None
        self._g2 = None
        self._table = None
        self._llc = None
        self._t2info = [None] * system.num_cores
        if system.l2 is None:
            if system.kind == LLC_PRIVATE_VAULT:
                self._init_tier2_vault(system)
            elif (system.kind == LLC_SHARED
                    and not system.victim_replication):
                self._init_tier2_nuca(system)
        self._t2state = []
        for c in range(system.num_cores):
            self._t2state.append(self._build_t2state(system, c))
        self.stats = self._build_stats()

    def _init_tier2_vault(self, system):
        self.tier2 = "vault"
        self._vaults = system.vaults
        self._t2maps = []
        # Constant local-hit latency: the stall lane is the only
        # per-event tier-2 timing input.
        tok = ("vault", system.llc_latency)
        for c, vault in enumerate(system.vaults):
            safe2 = {}
            vault.shadow = VaultShadow(vault, safe2)
            self._t2maps.append(safe2)
            self._t2info[c] = (tok, None, None, 0, system.llc_latency)

    def _init_tier2_nuca(self, system):
        self.tier2 = "nuca"
        llc = system.llc
        mesh = system.mesh
        self._llc = llc
        self._table = system.sharer_table
        self._g2 = {}
        nb = llc.num_banks
        hop_lat = mesh.hop_latency
        inj = mesh.INJECTION_OVERHEAD
        bank_lat = llc.bank_latency
        for c in range(system.num_cores):
            # Per-core bank latency/hop rows: round_trip(core, bank) +
            # bank access, exactly the reference's int arithmetic, and
            # the hop count round_trip adds to mesh.link_traversals.
            hops_row = [mesh.hops(c, b) for b in range(nb)]
            lat_row = [inj + 2 * h * hop_lat + bank_lat
                       for h in hops_row]
            tok = ("nuca", tuple(lat_row), tuple(hops_row))
            self._t2info[c] = (tok,
                               np.asarray(lat_row, dtype=np.int64),
                               np.asarray(hops_row, dtype=np.int64),
                               nb, 0)
        system.sharer_table.shadow = TableShadow(llc, self._g2)
        for i, bank in enumerate(llc.banks):
            bank.shadow = BankShadow(bank, system.sharer_table,
                                     self._g2, nb, i)

    def _build_t2state(self, system, c):
        """The per-core pre-bound tier-2 retire bundle (None when this
        system has no tier 2)."""
        if self.tier2 == "vault":
            m = self._t2maps[c]
            return (m.get, m, system.l1d[c].insert,
                    system.l1i[c].insert, system.cores[c])
        if self.tier2 == "nuca":
            g2 = self._g2
            table = system.sharer_table
            return (g2.get, g2, system.l1d[c].insert,
                    system.l1i[c].insert, system.cores[c],
                    table._entries.get, table.add_sharer,
                    table.remove_sharer, system.llc.banks[0]._reorder)
        return None

    def _build_stats(self):
        """Standalone kernel-activity stats group.  Deliberately NOT
        part of ``system.stats``: the differential pin suite asserts
        fastpath and reference stats snapshots are identical, and
        kernel activity is simulator observability, not simulated
        state."""
        g = Group("fastpath", "shadow-filter batch kernel activity")
        g.bind(self, "retired_events",
               desc="events retired in bulk by the kernel (all tiers)")
        g.bind(self, "tier1_retired",
               desc="events retired as trivial L1 hits")
        g.bind(self, "tier2_retired",
               desc="events retired as local vault/NUCA hits")
        g.bind(self, "streaks", desc="safe streaks retired")
        g.bind(self, "total_events",
               desc="events driven while the kernel was active")
        g.formula("slow_events", self.slow_events,
                  desc="events that took the reference path")
        g.formula("mean_streak", self.mean_streak,
                  desc="mean retired streak length (events)")
        return g

    def slow_events(self):
        return self.total_events - self.retired_events

    def mean_streak(self):
        if self.streaks == 0:
            return 0.0
        return self.retired_events / self.streaks

    def retired_fraction(self):
        if self.total_events == 0:
            return 0.0
        return self.retired_events / self.total_events

    def summary(self):
        """Manifest-ready activity record."""
        total = self.total_events
        return {
            "retired_events": self.retired_events,
            "tier1_retired": self.tier1_retired,
            "tier2_retired": self.tier2_retired,
            "slow_events": self.slow_events(),
            "total_events": total,
            "streaks": self.streaks,
            "mean_streak": self.mean_streak(),
            "retired_fraction": self.retired_fraction(),
            "retired_fraction_t1": (self.tier1_retired / total
                                    if total else 0.0),
            "retired_fraction_t2": (self.tier2_retired / total
                                    if total else 0.0),
            "tier2": self.tier2,
            "bailed": self.bailed,
            "bail_reason": self.bail_reason,
        }

    def tier2_lanes(self, core, lanes):
        """The core's (lat, stall, hops) tier-2 lanes over ``lanes``,
        built vectorized once per (trace, tier-2 config) and cached on
        the lanes object (see
        :meth:`repro.sim.driver.EventLanes.tier2_lanes`)."""
        tok, lat_lut, hop_lut, nb, const_lat = self._t2info[core]
        return lanes.tier2_lanes(tok, lat_lut, hop_lut, nb, const_lat)

    # silolint: hotpath
    def retire_chunk(self, core, lanes, cpi_ev, pos, hi, t, access,
                     measuring):
        """Drive ``lanes`` events ``[pos:hi)`` for ``core`` to
        completion: safe streaks are retired against the shadow maps,
        and every other event goes through ``access`` exactly as the
        reference loop would.  Returns the core's advanced clock.

        Tier-1 retirement has two regimes, picked by a per-core
        adaptive window:

        * Wide (window >= 64): classify a whole window with one
          C-level ``map(safe_map.get, keys[pos:end])``, find the safe
          prefix with ``list.index``, then replay only the *last*
          recency touch of each distinct key (reversed ``dict``
          dedup -- tier-1 events cannot insert or evict, so
          intermediate touches of a block are superseded by its last).
        * Narrow (window < 64): a per-event loop with inline reorder,
          which wastes nothing when streaks are short.

        The window tracks twice the last tier-1 streak length, so each
        core settles into whichever regime its hit pattern warrants.

        Events that break a tier-1 streak are then probed against the
        tier-2 map and, when safe, retired inline: the L1 fill runs
        through the real cache methods (whose hooks keep tier 1
        coherent), latency sums, histograms and the clock advance
        through the identical per-event operations (order-sensitive
        floats), and commuting integer counters are batched and
        flushed at chunk end.  Tier-2 retirement mutates L1 state, so
        there is no wide regime beyond tier 1 -- classification is
        per event by construction.
        """
        (safe_map, d_reorder, i_reorder,
         data_count, ifetch_count) = self._lanes[core]
        keys = lanes.keys
        blocks = lanes.blocks
        writes = lanes.writes
        ifetches = lanes.ifetches
        lat_mul = lanes.lat_mul
        if_prefix = lanes.if_prefix
        get = safe_map.get
        both_reorder = d_reorder and i_reorder
        win = self._win[core]
        check = self.check if self.verify_mode else None
        self.total_events += hi - pos
        pos0 = pos
        retired = 0
        retired2 = 0
        run = 0
        streaks = 0
        slow_run = 0
        slow_win = 16
        t2 = self._t2state[core]
        nuca = False
        if t2 is None:
            t2get = _NO_TIER2.get
        else:
            sysobj = self._system
            lo_rw, hi_rw = sysobj.rw_shared_range
            nuca = self.tier2 == "nuca"
            if nuca:
                (t2get, t2map, l1d_ins, l1i_ins, cm, ent_get,
                 add_sh, rem_sh, llc_reorder) = t2
                ins_llc = sysobj._insert_llc
                t2lat, t2stall, t2hops = self.tier2_lanes(core, lanes)
                bit = 1 << core
                hops_acc = 0
            else:
                t2get, t2map, l1d_ins, l1i_ins, cm = t2
                llc_lat = sysobj.llc_latency
                t2stall = self.tier2_lanes(core, lanes)[1]
            dlat = cm.data_latency
            ilat = cm.ifetch_latency
            rec = cm.latency_hist[LEVEL_LLC_LOCAL].record
            acc = 0
            wb = 0
            d2 = 0
            i2 = 0
        while pos < hi:
            if win >= 64:
                end = pos + win
                if end > hi:
                    end = hi
                kslice = keys[pos:end]
                # One allocation per scan window, not per event: the
                # C-level batch classify is the whole point.
                ent = list(map(get, kslice))  # silolint: disable=SL007
                try:
                    k = ent.index(None)
                    full = False
                except ValueError:
                    k = end - pos
                    full = True
                if k:
                    if d_reorder and i_reorder:
                        # Both L1s reorder on hit (LRU, the common
                        # case): no kind checks needed.  Read and
                        # write keys of one block both move the same
                        # block in the same dict, and replaying that
                        # superset of moves in ascending last-touch
                        # order still lands every block at its true
                        # final recency position.  ``fromkeys`` over
                        # the reversed streak keeps the *first*
                        # occurrence of each key -- its last touch --
                        # so iterating it reversed replays distinct
                        # keys in ascending last-touch order.
                        replay = dict.fromkeys(
                            reversed(kslice if full else kslice[:k]))
                        for key in reversed(replay):
                            entries = get(key)
                            b = key >> 2
                            st = entries.pop(b)
                            entries[b] = st
                    elif d_reorder or i_reorder:
                        # Mixed replacement policies: keep the set
                        # dicts alongside the keys so the kind checks
                        # can skip non-reordering views.  One
                        # allocation per retired streak.
                        replay = dict(  # silolint: disable=SL007
                            zip(kslice[k - 1::-1], ent[k - 1::-1]))
                        for key, entries in reversed(replay.items()):
                            kind = key & 3
                            if kind == 2:
                                if not i_reorder:
                                    continue
                            elif not d_reorder:
                                continue
                            b = key >> 2
                            st = entries.pop(b)
                            entries[b] = st
                    stop = pos + k
                    if measuring:
                        k_if = (if_prefix[stop] - if_prefix[pos]) >> 1
                        data_count[LEVEL_L1] += k - k_if
                        ifetch_count[LEVEL_L1] += k_if
                    # Drain k sequential ``t += cpi_ev`` adds -- the
                    # identical FP operation sequence, so still
                    # bit-exact (a bulk ``k * cpi_ev`` would not be).
                    # Short streaks take a plain loop: constructing the
                    # C-level accumulate pipeline costs more than a few
                    # float adds.
                    if k < 24:
                        for _ in range(k):
                            t += cpi_ev
                    else:
                        t = deque(accumulate(repeat(cpi_ev, k),
                                             initial=t), maxlen=1)[0]
                    retired += k
                    run += k
                    pos = stop
                win = k + k
                if win < 8:
                    win = 8
                elif win > 1024:
                    win = 1024
                if full:
                    continue
            elif both_reorder:
                # Narrow regime, both L1s LRU (the common case): every
                # hit is a pop/reinsert of its own block, no kind
                # checks needed.
                start = pos
                while pos < hi:
                    key = keys[pos]
                    entries = get(key)
                    if entries is None:
                        break
                    b = key >> 2
                    st = entries.pop(b)
                    entries[b] = st
                    pos += 1
                k = pos - start
                if k:
                    if measuring:
                        k_if = (if_prefix[pos] - if_prefix[start]) >> 1
                        data_count[LEVEL_L1] += k - k_if
                        ifetch_count[LEVEL_L1] += k_if
                    # t is never read during a streak, so the k
                    # deferred ``t += cpi_ev`` adds drain afterwards:
                    # a plain loop for short streaks, the C-level
                    # accumulate for long ones (same op sequence).
                    if k < 24:
                        for _ in range(k):
                            t += cpi_ev
                    else:
                        t = deque(accumulate(repeat(cpi_ev, k),
                                             initial=t), maxlen=1)[0]
                    retired += k
                    run += k
                win = 8 if k < 4 else k + k
            else:
                # Narrow regime, mixed replacement policies: kind
                # checks route each hit to its view's reorder rule.
                start = pos
                while pos < hi:
                    key = keys[pos]
                    entries = get(key)
                    if entries is None:
                        break
                    kind = key & 3
                    if kind == 2:
                        if i_reorder:
                            b = key >> 2
                            st = entries.pop(b)
                            entries[b] = st
                    elif d_reorder:
                        b = key >> 2
                        st = entries.pop(b)
                        entries[b] = st
                    pos += 1
                k = pos - start
                if k:
                    if measuring:
                        k_if = (if_prefix[pos] - if_prefix[start]) >> 1
                        data_count[LEVEL_L1] += k - k_if
                        ifetch_count[LEVEL_L1] += k_if
                    if k < 24:
                        for _ in range(k):
                            t += cpi_ev
                    else:
                        t = deque(accumulate(repeat(cpi_ev, k),
                                             initial=t), maxlen=1)[0]
                    retired += k
                    run += k
                win = 8 if k < 4 else k + k
            if pos >= hi:
                break
            # the event at ``pos`` is not a guaranteed-trivial L1 hit:
            # probe tier 2, then fall back to the reference path.
            key = keys[pos]
            v = t2get(key)
            if v is not None:
                b = key >> 2
                kind = key & 3
                if nuca:
                    # Local NUCA-bank hit: mesh round trip + bank
                    # access, home-bank LRU touch, L1 fill through the
                    # real sharer-table/cache methods (their hooks
                    # keep both shadow tiers coherent).
                    lat = t2lat[pos]
                    hops_acc += t2hops[pos]
                    acc += 1
                    if llc_reorder:
                        st2 = v.pop(b)
                        v[b] = st2
                    if kind == 2:
                        l1i_ins(b, SHARED)
                        if measuring:
                            ilat[LEVEL_LLC_LOCAL] += lat
                            i2 += 1
                            rec(lat)
                    else:
                        if kind:
                            # write key => no sharers: the peer sweep
                            # is a no-op and the fill takes M.
                            add_sh(b, core, exclusive=True)
                            victim = l1d_ins(b, MODIFIED)
                        else:
                            e = ent_get(b)
                            if e is None or not e[0] & ~bit:
                                add_sh(b, core, exclusive=True)
                                victim = l1d_ins(b, EXCLUSIVE)
                            else:
                                add_sh(b, core)
                                victim = l1d_ins(b, SHARED)
                        if victim is not None:
                            vb = victim[0]
                            rem_sh(vb, core)
                            if victim[1] >= OWNED:  # dirty: M or O
                                wb += 1
                                # memory queueing is time-dependent:
                                # stamp the clock and run the real
                                # (rare) writeback path.
                                sysobj.now = t
                                ins_llc(core, vb, True)
                        if measuring:
                            dlat[LEVEL_LLC_LOCAL] += lat
                            d2 += 1
                            rec(lat)
                            if lo_rw <= b < hi_rw:
                                cm.rw_shared_latency += lat
                                cm.rw_shared_count += 1
                else:
                    # Local vault hit: one TAD access, L1 fill with
                    # the vault state (write keys exist only for M, so
                    # no upgrade machinery can be due).
                    acc += 1
                    if kind == 2:
                        l1i_ins(b, SHARED)
                        if measuring:
                            ilat[LEVEL_LLC_LOCAL] += llc_lat
                            i2 += 1
                            rec(llc_lat)
                    else:
                        victim = l1d_ins(b, MODIFIED if kind else v)
                        if victim is not None:
                            if victim[1] >= OWNED:  # dirty: M or O
                                wb += 1
                                # inclusive: dirty data lands in the
                                # vault when it still holds the victim
                                if victim[0] << 2 in t2map:
                                    acc += 1
                        if measuring:
                            dlat[LEVEL_LLC_LOCAL] += llc_lat
                            d2 += 1
                            rec(llc_lat)
                            if lo_rw <= b < hi_rw:
                                cm.rw_shared_latency += llc_lat
                                cm.rw_shared_count += 1
                t += cpi_ev
                t += t2stall[pos]
                pos += 1
                run += 1
                retired2 += 1
                continue
            # reference path
            if run:
                streaks += 1
                run = 0
                slow_run = 0
                slow_win = 16
            lat = access(core, blocks[pos], writes[pos], ifetches[pos],
                         t)
            t += cpi_ev
            if lat:
                t += lat * lat_mul[pos]
            pos += 1
            if check is not None:
                check(core)
                continue
            slow_run += 1
            if slow_run >= 12:
                # Miss-heavy stretch: drive a doubling window through
                # the reference loop with no shadow probes at all.
                # Skipping a probe can only forgo a retirement -- it
                # never changes what the event does -- so this is pure
                # throughput policy: the kernel stops paying its
                # per-event classification tax exactly where the
                # workload has stopped rewarding it.
                end = pos + slow_win
                if end > hi:
                    end = hi
                while pos < end:
                    lat = access(core, blocks[pos], writes[pos],
                                 ifetches[pos], t)
                    t += cpi_ev
                    if lat:
                        t += lat * lat_mul[pos]
                    pos += 1
                slow_win += slow_win
                if slow_win > 256:
                    slow_win = 256
                slow_run = 0
        if run:
            streaks += 1
        self.retired_events += retired + retired2
        self.tier1_retired += retired
        self.tier2_retired += retired2
        self.streaks += streaks
        self._win[core] = win
        if t2 is not None:
            # Commuting integer counters, batched per chunk.
            sysobj.llc_accesses += acc
            sysobj.l1_writebacks += wb
            if nuca and hops_acc:
                sysobj.mesh.link_traversals += hops_acc
            if measuring:
                data_count[LEVEL_LLC_LOCAL] += d2
                ifetch_count[LEVEL_LLC_LOCAL] += i2
            if check is not None:
                self.check_tier2(core)
        if pos0 >= self._floor[core]:
            self._p_total += hi - pos0
            self._p_retired += retired + retired2
            self._p_t1 += retired
            self._p_t2 += retired2
            if not self._decided:
                total = self._p_total
                tiered = self.tier2 is not None
                if total >= PROBATION_EVENTS:
                    self._decided = True
                    final_min = (TIER2_RETIRE_MIN if tiered
                                 else RETIRE_MIN)
                    if self._p_retired < final_min * total:
                        self._record_bail("final", final_min)
                        self.bail()
                else:
                    early_min = (TIER2_EARLY_RETIRE_MIN if tiered
                                 else EARLY_RETIRE_MIN)
                    if (total >= EARLY_PROBATION_EVENTS
                            and self._p_retired < early_min * total):
                        self._decided = True
                        self._record_bail("early", early_min)
                        self.bail()
        return t

    def set_probation_floor(self, floors):
        """Exclude chunks starting before ``floors[core]`` (a trace
        position -- the driver passes each core's prewarm-prefix
        length) from the bail-out probation window.  The prewarm
        prefix touches each block once by design, so its near-zero
        retired fraction says nothing about the workload's steady
        state.  Stats counters are unaffected; only the bail decision
        window moves."""
        for core, floor in floors.items():
            if floor > self._floor[core]:
                self._floor[core] = floor

    def _record_bail(self, stage, threshold):
        """Deposit the diagnosable bail-out record (which tier was
        available, observed per-tier retired fractions over the
        probation window, the threshold missed, the decision point)."""
        total = self._p_total
        self.bail_reason = {
            "stage": stage,
            "tier2": self.tier2,
            "threshold": threshold,
            "retired_fraction": self._p_retired / total,
            "tier1_fraction": self._p_t1 / total,
            "tier2_fraction": self._p_t2 / total,
            "at_events": total,
        }

    def bail(self):
        """Permanently disable the kernel for this system: detach
        every shadow hook (the miss path goes back to reference-loop
        cost) and flag the driver to stop calling
        :meth:`retire_chunk`.  Purely a throughput decision -- results
        are unchanged."""
        self.bailed = True
        for caches in (self._l1d, self._l1i):
            for cache in caches:
                cache.shadow = None
        for lane in self._lanes:
            lane[0].clear()
        if self.tier2 == "vault":
            for vault in self._vaults:
                vault.shadow = None
            for m in self._t2maps:
                m.clear()
        elif self.tier2 == "nuca":
            for bank in self._llc.banks:
                bank.shadow = None
            self._table.shadow = None
            self._g2.clear()
        if self.on_bail is not None:
            self.on_bail()

    # -- verify mode ---------------------------------------------------

    def check(self, core):
        """Cross-check ``core``'s safe_map against its real L1s
        (REPRO_FASTPATH=verify); raises :class:`ShadowDivergence` on
        any mismatch -- a missing notification somewhere."""
        expect = {}
        for entries in self._l1d[core]._sets:
            for block, state in entries.items():
                expect[block << 2] = entries
                if state == MODIFIED:
                    expect[(block << 2) | 1] = entries
        for entries in self._l1i[core]._sets:
            for block, state in entries.items():
                if state == MODIFIED:
                    # L1-I lines are never written; an M line means a
                    # mutation path we do not model as read-only.
                    raise ShadowDivergence(
                        "core %d l1i: block %d is MODIFIED"
                        % (core, block))
                expect[(block << 2) | 2] = entries
        got = self._lanes[core][0]
        if got.keys() != expect.keys():
            missing = sorted(expect.keys() - got.keys())[:8]
            stale = sorted(got.keys() - expect.keys())[:8]
            raise ShadowDivergence(
                "core %d: shadow filter diverged from the L1s "
                "(missing=%s stale=%s)"
                % (core, [self._decode(k) for k in missing],
                   [self._decode(k) for k in stale]))
        for key, entries in got.items():
            if entries is not expect[key]:
                raise ShadowDivergence(
                    "core %d: %s maps to the wrong set dict"
                    % (core, self._decode(key)))

    def check_tier2(self, core):
        """Cross-check the tier-2 shadow after a retired chunk
        (REPRO_FASTPATH=verify): the core's vault map under SILO, the
        system-wide NUCA map under the shared org.  Raises
        :class:`ShadowDivergence` on any stale or missing entry."""
        if self.tier2 == "vault":
            self._check_vault(core)
        elif self.tier2 == "nuca":
            self._check_nuca()

    def _check_vault(self, core):
        vault = self._vaults[core]
        tags = vault.tags
        states = vault.states
        num_sets = vault.num_sets
        got = self._t2maps[core]
        l1d = self._l1d[core]
        n_read = 0
        for key, st in got.items():
            b = key >> 2
            s = b % num_sets
            if tags[s] != b:
                raise ShadowDivergence(
                    "core %d vault shadow: stale %s (not resident)"
                    % (core, self._decode(key)))
            vst = states[s]
            kind = key & 3
            if kind == 1:
                if st != MODIFIED or vst != MODIFIED:
                    raise ShadowDivergence(
                        "core %d vault shadow: write key for block %d "
                        "but vault state is %d" % (core, b, vst))
                continue
            if st != vst:
                raise ShadowDivergence(
                    "core %d vault shadow: %s records state %d, vault "
                    "has %d" % (core, self._decode(key), st, vst))
            if kind == 0:
                n_read += 1
                if vst == MODIFIED and (key | 1) not in got:
                    raise ShadowDivergence(
                        "core %d vault shadow: M block %d missing its "
                        "write key" % (core, b))
                if (key | 2) not in got:
                    raise ShadowDivergence(
                        "core %d vault shadow: block %d missing its "
                        "ifetch key" % (core, b))
                # The two-probe soundness invariant: when L1-D and the
                # vault both hold a block, their states are equal.
                l1st = l1d.lookup(b, touch=False)
                if l1st is not None and l1st != vst:
                    raise ShadowDivergence(
                        "core %d: block %d is L1-D state %d but vault "
                        "state %d -- the tier-2 write soundness "
                        "invariant is broken" % (core, b, l1st, vst))
        if n_read != vault.resident:
            raise ShadowDivergence(
                "core %d vault shadow tracks %d blocks, vault holds %d"
                % (core, n_read, vault.resident))

    def _check_nuca(self):
        table = self._table._entries
        expect = {}
        for bank in self._llc.banks:
            for entries in bank._sets:
                for b in entries:
                    key = b << 2
                    expect[key | 2] = entries
                    e = table.get(b)
                    if e is None:
                        expect[key] = entries
                        expect[key | 1] = entries
                    elif e[1] == _NO_OWNER:
                        expect[key] = entries
        got = self._g2
        if got.keys() != expect.keys():
            missing = sorted(expect.keys() - got.keys())[:8]
            stale = sorted(got.keys() - expect.keys())[:8]
            raise ShadowDivergence(
                "NUCA shadow diverged from the banks/sharer table "
                "(missing=%s stale=%s)"
                % ([self._decode(k) for k in missing],
                   [self._decode(k) for k in stale]))
        for key, entries in got.items():
            if entries is not expect[key]:
                raise ShadowDivergence(
                    "NUCA shadow: %s maps to the wrong set dict"
                    % self._decode(key))

    @staticmethod
    def _decode(key):
        """Human-readable form of an event key (for diagnostics)."""
        return "%s:%d" % (("read", "write", "ifetch", "?")[key & 3],
                          key >> 2)


def kernel_for(system):
    """The system's shadow-filter kernel, or None when the fast path
    must not run: explicitly disabled (``system.use_fastpath``), or a
    feature with per-event side effects on the hit paths is active
    (prefetchers, fault injection, tracing, sharing classification).
    Builds and caches the filter on the system on first eligible use.
    """
    if not system.use_fastpath:
        return None
    if (system.prefetchers is not None
            or system.faults is not None
            or system.tracer is not None
            or system.track_sharing):
        return None
    filt = system.shadow_filter
    if filt is None:
        filt = ShadowFilter(system)
        system.shadow_filter = filt
    elif filt.bailed:
        return None
    filt.verify_mode = mode_from_env() == "verify"
    return filt
