"""Batched L1-hit fast path: a shadow-filter event kernel.

``_drive`` (repro.sim.driver) normally pays a full Python call into
``System.access`` for every reference -- including the ~90%+ that are
trivial L1 hits in a warm cache.  This module collapses those runs of
guaranteed-trivial events into a tight loop with no calls, no flag
decoding and no per-event counter bumps, while staying *bit-identical*
to the reference loop.

Safe-set invariant
------------------
Per core, a single ``safe_map`` dict holds every event key that is
guaranteed to be a trivial L1 hit.  An event key fuses the block
number with the event kind -- ``block << 2 | kind`` where kind 0 is a
data read, 1 a data write and 2 an ifetch, exactly the trace's flag
bits -- so the driver can pre-encode one key lane per trace and the
kernel can classify a whole chunk with a single C-level
``map(safe_map.get, keys)``:

* ``block << 2`` (L1-D): block resident in any valid state.  A data
  read is then a guaranteed hit whose only side effects are the LRU
  recency touch and the L1 counter bump.
* ``block << 2 | 1`` (L1-D): block resident in state MODIFIED.  Only
  then is a data write side-effect-free (any other state runs the
  write-upgrade machinery: peer invalidations, directory updates).
* ``block << 2 | 2`` (L1-I): block resident; ifetches never write, so
  residency alone makes them safe.

The invariant is *soundness only*: a key missing from the map merely
falls back to the slow path (which IS the reference path), but a stale
entry would corrupt results.  Every L1 mutation therefore notifies the
view -- ``SetAssocCache.insert/insert_cold/update/invalidate/clear``
carry the hooks, and ``System`` only ever mutates L1 contents through
those methods (verified by ``tests/test_fastpath.py`` and, at runtime,
by ``REPRO_FASTPATH=verify``).

Mapping each key to the *set dict itself* (not a boolean) fuses the
membership test with the recency update: after a streak is accepted
the kernel replays the exact ``del entries[block]; entries[block] =
state`` reorder that ``SetAssocCache.lookup`` performs, so later
eviction victims are unchanged.  Because retired events cannot insert
or evict, only the *last* touch of each distinct key matters, and the
replay deduplicates a streak down to one move per distinct key (a
reversed ``dict.fromkeys``, again C-level).  Timing stays exact
because the clock advances through the *same sequence* of ``t +=
cpi_ev`` float additions as the reference loop, drained through a
C-level ``itertools.accumulate`` -- float addition is not
associative, so a bulk ``t += k * cpi_ev`` would *not* be
bit-identical.

Disqualification and bail-out
-----------------------------
Prefetchers, fault injection, event tracing and sharing classification
all hang per-event side effects off the L1-hit path, so any of them
disables the kernel for the whole system (``kernel_for`` returns None)
and those configurations run the reference loop byte-for-byte.
Miss-bound workloads (the paper's LLC-stressing scale-out suite
included) additionally make the kernel *bail out* at runtime: short
safe streaks cannot amortize the batch scan, so after a probation
window the filter detaches itself and the run continues on the
reference loop (see :class:`ShadowFilter`).  Bailing, like every
other kernel decision, changes throughput only -- never results.

Configuration
-------------
``$REPRO_FASTPATH`` = ``on`` (default) / ``off`` / ``verify`` (run the
kernel but cross-check the shadow maps against the real L1s after
every slow-path event).  :func:`use_fastpath` installs an ambient
override (the CLI's ``--no-fastpath``); the run engine records the
resolved value in ``RunRequest.fastpath`` so provenance keys capture
it -- the *results* are identical either way, only throughput differs.
"""

import os
from collections import deque
from contextlib import contextmanager
from itertools import accumulate, repeat

from repro.coherence.states import MODIFIED
from repro.cores.perf_model import LEVEL_L1
from repro.obs.stats import Group

#: Recognized $REPRO_FASTPATH spellings.
_ON = frozenset(("", "1", "on", "true", "yes"))
_OFF = frozenset(("0", "off", "false", "no"))


def mode_from_env():
    """The fast-path mode from ``$REPRO_FASTPATH``: 'on', 'off' or
    'verify' (unset means 'on')."""
    raw = os.environ.get("REPRO_FASTPATH", "").strip().lower()
    if raw in _ON:
        return "on"
    if raw in _OFF:
        return "off"
    if raw == "verify":
        return "verify"
    raise ValueError("REPRO_FASTPATH must be on/off/verify, got %r"
                     % raw)


_override = None


def default_enabled():
    """Ambient fast-path default for new Systems/RunRequests: the
    :func:`use_fastpath` override when one is installed, else
    ``$REPRO_FASTPATH`` (on unless explicitly 'off')."""
    if _override is not None:
        return _override
    return mode_from_env() != "off"


@contextmanager
def use_fastpath(enabled):
    """Install an ambient fast-path on/off override for the block (the
    CLI wraps experiments in this for ``--no-fastpath``)."""
    global _override
    prev = _override
    _override = bool(enabled)
    try:
        yield
    finally:
        _override = prev


class ShadowDivergence(AssertionError):
    """The shadow filter disagrees with the real L1 contents
    (REPRO_FASTPATH=verify): a mutation path failed to notify."""


class ShadowView:
    """Shadow of one L1 feeding the core's shared ``safe_map`` (event
    key -> the set dict holding the block; see the module docstring
    for the key encoding).  The L1-D view owns the read (kind 0) and
    write (kind 1) keys, the L1-I view the ifetch (kind 2) keys.  Fed
    by the owning :class:`~repro.caches.sram_cache.SetAssocCache`'s
    notification hooks."""

    __slots__ = ("safe_map", "ifetch")

    def __init__(self, cache, safe_map, ifetch):
        self.safe_map = safe_map
        self.ifetch = ifetch
        # Adopt whatever is already resident (the filter may be built
        # against a warm system, e.g. between warmup and measure).
        for entries in cache._sets:
            for block, state in entries.items():
                self.note(block, state, entries)

    def note(self, block, state, entries):
        """The cache inserted ``block`` into ``entries`` (or changed
        its state)."""
        key = block << 2
        m = self.safe_map
        if self.ifetch:
            m[key | 2] = entries
            return
        m[key] = entries
        if state == MODIFIED:
            m[key | 1] = entries
        else:
            m.pop(key | 1, None)

    def drop(self, block):
        """The cache evicted or invalidated ``block``."""
        key = block << 2
        m = self.safe_map
        if self.ifetch:
            m.pop(key | 2, None)
        else:
            m.pop(key, None)
            m.pop(key | 1, None)

    def wipe(self):
        """The cache was cleared wholesale.  Only this view's kinds
        die -- the safe_map is shared with the core's other L1."""
        m = self.safe_map
        if self.ifetch:
            dead = [k for k in m if k & 3 == 2]
        else:
            dead = [k for k in m if k & 3 != 2]
        for k in dead:
            del m[k]


#: Events driven before the kernel decides whether to keep running.
PROBATION_EVENTS = 128_000
#: Minimum retired fraction for the kernel to stay enabled: below
#: this, safe streaks are too short for batching to beat its own
#: bookkeeping (short-streak scans plus shadow-hook costs on the miss
#: path), so the kernel bails out for the rest of the run.
RETIRE_MIN = 0.95
#: A clearly miss-bound workload is recognized sooner, before the
#: full probation window has paid its overhead.  The early threshold
#: is deliberately loose: a hit-dominated workload still filling cold
#: caches retires well above it, while LLC-stressing suites sit far
#: below.
EARLY_PROBATION_EVENTS = 32_000
EARLY_RETIRE_MIN = 0.75


class ShadowFilter:
    """Per-system shadow of every core's L1-D/L1-I plus the batch
    kernel that retires safe hit streaks against it.

    The filter self-monitors: after :data:`PROBATION_EVENTS` driven
    events it compares the retired fraction against
    :data:`RETIRE_MIN` and, in miss-heavy regimes where batching
    cannot pay for itself, *bails out* -- detaches every shadow hook
    and tells the driver to run the reference loop for the rest of
    the run.  Bailing is pure throughput policy: the kernel is
    semantically transparent, so results are bit-identical whether it
    retires everything, nothing, or bails halfway through.
    """

    def __init__(self, system):
        self.num_cores = system.num_cores
        self.verify_mode = False
        #: Kernel disabled itself (miss-heavy workload); permanent
        #: for this system.
        self.bailed = False
        #: Optional zero-arg callback fired by :meth:`bail` (the
        #: profiler counts mid-run bail-outs through this).
        self.on_bail = None
        self._decided = False
        #: Events retired in bulk by the kernel.
        self.retired_events = 0
        #: Safe streaks retired (>= 1 event each).
        self.streaks = 0
        #: Events driven through ``_drive`` while the kernel was active
        #: (retired + slow-path).
        self.total_events = 0
        self._l1d = system.l1d
        self._l1i = system.l1i
        self._lanes = []
        #: Per-core adaptive scan window: grows into the C-level batch
        #: scan on long hit streaks, shrinks to the per-event loop in
        #: miss-heavy regimes where wide scans would be wasted work.
        self._win = []
        for c in range(system.num_cores):
            safe_map = {}
            dview = ShadowView(system.l1d[c], safe_map, False)
            iview = ShadowView(system.l1i[c], safe_map, True)
            system.l1d[c].shadow = dview
            system.l1i[c].shadow = iview
            core = system.cores[c]
            self._lanes.append((
                safe_map,
                system.l1d[c]._reorder, system.l1i[c]._reorder,
                core.data_count, core.ifetch_count))
            self._win.append(16)
        self.stats = self._build_stats()

    def _build_stats(self):
        """Standalone hit-streak stats group.  Deliberately NOT part of
        ``system.stats``: the differential pin suite asserts fastpath
        and reference stats snapshots are identical, and kernel
        activity is simulator observability, not simulated state."""
        g = Group("fastpath", "shadow-filter batch kernel activity")
        g.bind(self, "retired_events",
               desc="events retired in bulk by the kernel")
        g.bind(self, "streaks", desc="safe hit streaks retired")
        g.bind(self, "total_events",
               desc="events driven while the kernel was active")
        g.formula("slow_events", self.slow_events,
                  desc="events that took the reference path")
        g.formula("mean_streak", self.mean_streak,
                  desc="mean retired streak length (events)")
        return g

    def slow_events(self):
        return self.total_events - self.retired_events

    def mean_streak(self):
        if self.streaks == 0:
            return 0.0
        return self.retired_events / self.streaks

    def summary(self):
        """Manifest-ready activity record."""
        return {
            "retired_events": self.retired_events,
            "slow_events": self.slow_events(),
            "total_events": self.total_events,
            "streaks": self.streaks,
            "mean_streak": self.mean_streak(),
            "bailed": self.bailed,
        }

    # silolint: hotpath
    def retire_chunk(self, core, blocks, writes, ifetches, lat_mul,
                     cpi_ev, keys, if_prefix, pos, hi, t, access,
                     measuring):
        """Drive ``blocks[pos:hi]`` for ``core`` to completion: safe
        hit streaks are retired in bulk against the shadow filter, and
        every other event goes through ``access`` exactly as the
        reference loop would.  Returns the core's advanced clock.

        Two retirement regimes, picked by a per-core adaptive window:

        * Wide (window >= 64): classify a whole window with one
          C-level ``map(safe_map.get, keys[pos:end])``, find the safe
          prefix with ``list.index``, then replay only the *last*
          recency touch of each distinct key (reversed ``dict(zip)``
          dedup -- retired events cannot insert or evict, so
          intermediate touches of a block are superseded by its last).
        * Narrow (window < 64): a per-event loop with inline reorder,
          which wastes nothing when misses are frequent and streaks
          are short.

        The window tracks twice the last streak length, so each core
        settles into whichever regime its miss rate warrants.  Per
        retired event the clock advances ``t += cpi_ev`` exactly as
        the reference loop does (float addition is order-sensitive);
        L1 counters are bumped per streak from the ifetch prefix-sum
        lane (integer adds commute).
        """
        (safe_map, d_reorder, i_reorder,
         data_count, ifetch_count) = self._lanes[core]
        get = safe_map.get
        win = self._win[core]
        check = self.check if self.verify_mode else None
        self.total_events += hi - pos
        retired = 0
        run = 0
        streaks = 0
        while pos < hi:
            if win >= 64:
                end = pos + win
                if end > hi:
                    end = hi
                kslice = keys[pos:end]
                # One allocation per scan window, not per event: the
                # C-level batch classify is the whole point.
                ent = list(map(get, kslice))  # silolint: disable=SL007
                try:
                    k = ent.index(None)
                    full = False
                except ValueError:
                    k = end - pos
                    full = True
                if k:
                    if d_reorder and i_reorder:
                        # Both L1s reorder on hit (LRU, the common
                        # case): no kind checks needed.  Read and
                        # write keys of one block both move the same
                        # block in the same dict, and replaying that
                        # superset of moves in ascending last-touch
                        # order still lands every block at its true
                        # final recency position.  ``fromkeys`` over
                        # the reversed streak keeps the *first*
                        # occurrence of each key -- its last touch --
                        # so iterating it reversed replays distinct
                        # keys in ascending last-touch order.
                        replay = dict.fromkeys(
                            reversed(kslice if full else kslice[:k]))
                        for key in reversed(replay):
                            entries = get(key)
                            b = key >> 2
                            st = entries.pop(b)
                            entries[b] = st
                    elif d_reorder or i_reorder:
                        # Mixed replacement policies: keep the set
                        # dicts alongside the keys so the kind checks
                        # can skip non-reordering views.  One
                        # allocation per retired streak.
                        replay = dict(  # silolint: disable=SL007
                            zip(kslice[k - 1::-1], ent[k - 1::-1]))
                        for key, entries in reversed(replay.items()):
                            kind = key & 3
                            if kind == 2:
                                if not i_reorder:
                                    continue
                            elif not d_reorder:
                                continue
                            b = key >> 2
                            st = entries.pop(b)
                            entries[b] = st
                    stop = pos + k
                    if measuring:
                        k_if = (if_prefix[stop] - if_prefix[pos]) >> 1
                        data_count[LEVEL_L1] += k - k_if
                        ifetch_count[LEVEL_L1] += k_if
                    # C-level drain of k sequential ``t += cpi_ev``
                    # adds -- the identical FP operation sequence, so
                    # still bit-exact (a bulk ``k * cpi_ev`` would not
                    # be).
                    t = deque(accumulate(repeat(cpi_ev, k), initial=t),
                              maxlen=1)[0]
                    retired += k
                    run += k
                    pos = stop
                win = k + k
                if win < 8:
                    win = 8
                elif win > 1024:
                    win = 1024
                if full:
                    continue
            else:
                start = pos
                while pos < hi:
                    key = keys[pos]
                    entries = get(key)
                    if entries is None:
                        break
                    kind = key & 3
                    if kind == 2:
                        if i_reorder:
                            b = key >> 2
                            st = entries.pop(b)
                            entries[b] = st
                    elif d_reorder:
                        b = key >> 2
                        st = entries.pop(b)
                        entries[b] = st
                    pos += 1
                k = pos - start
                if k:
                    if measuring:
                        k_if = (if_prefix[pos] - if_prefix[start]) >> 1
                        data_count[LEVEL_L1] += k - k_if
                        ifetch_count[LEVEL_L1] += k_if
                    # t is never read during a streak, so the k
                    # deferred ``t += cpi_ev`` adds drain through the
                    # same C-level accumulate as the wide regime.
                    t = deque(accumulate(repeat(cpi_ev, k), initial=t),
                              maxlen=1)[0]
                    retired += k
                    run += k
                win = 8 if k < 4 else k + k
            if pos >= hi:
                break
            # the event at ``pos`` is not guaranteed safe: reference path
            if run:
                streaks += 1
                run = 0
            lat = access(core, blocks[pos], writes[pos], ifetches[pos],
                         t)
            t += cpi_ev
            if lat:
                t += lat * lat_mul[pos]
            pos += 1
            if check is not None:
                check(core)
        if run:
            streaks += 1
        self.retired_events += retired
        self.streaks += streaks
        self._win[core] = win
        if not self._decided:
            total = self.total_events
            if total >= PROBATION_EVENTS:
                self._decided = True
                if self.retired_events < RETIRE_MIN * total:
                    self.bail()
            elif (total >= EARLY_PROBATION_EVENTS
                    and self.retired_events < EARLY_RETIRE_MIN * total):
                self._decided = True
                self.bail()
        return t

    def bail(self):
        """Permanently disable the kernel for this system: detach
        every shadow hook (the miss path goes back to reference-loop
        cost) and flag the driver to stop calling
        :meth:`retire_chunk`.  Purely a throughput decision -- results
        are unchanged."""
        self.bailed = True
        for caches in (self._l1d, self._l1i):
            for cache in caches:
                cache.shadow = None
        for lane in self._lanes:
            lane[0].clear()
        if self.on_bail is not None:
            self.on_bail()

    # -- verify mode ---------------------------------------------------

    def check(self, core):
        """Cross-check ``core``'s safe_map against its real L1s
        (REPRO_FASTPATH=verify); raises :class:`ShadowDivergence` on
        any mismatch -- a missing notification somewhere."""
        expect = {}
        for entries in self._l1d[core]._sets:
            for block, state in entries.items():
                expect[block << 2] = entries
                if state == MODIFIED:
                    expect[(block << 2) | 1] = entries
        for entries in self._l1i[core]._sets:
            for block, state in entries.items():
                if state == MODIFIED:
                    # L1-I lines are never written; an M line means a
                    # mutation path we do not model as read-only.
                    raise ShadowDivergence(
                        "core %d l1i: block %d is MODIFIED"
                        % (core, block))
                expect[(block << 2) | 2] = entries
        got = self._lanes[core][0]
        if got.keys() != expect.keys():
            missing = sorted(expect.keys() - got.keys())[:8]
            stale = sorted(got.keys() - expect.keys())[:8]
            raise ShadowDivergence(
                "core %d: shadow filter diverged from the L1s "
                "(missing=%s stale=%s)"
                % (core, [self._decode(k) for k in missing],
                   [self._decode(k) for k in stale]))
        for key, entries in got.items():
            if entries is not expect[key]:
                raise ShadowDivergence(
                    "core %d: %s maps to the wrong set dict"
                    % (core, self._decode(key)))

    @staticmethod
    def _decode(key):
        """Human-readable form of an event key (for diagnostics)."""
        return "%s:%d" % (("read", "write", "ifetch", "?")[key & 3],
                          key >> 2)


def kernel_for(system):
    """The system's shadow-filter kernel, or None when the fast path
    must not run: explicitly disabled (``system.use_fastpath``), or a
    feature with per-event side effects on the L1-hit path is active
    (prefetchers, fault injection, tracing, sharing classification).
    Builds and caches the filter on the system on first eligible use.
    """
    if not system.use_fastpath:
        return None
    if (system.prefetchers is not None
            or system.faults is not None
            or system.tracer is not None
            or system.track_sharing):
        return None
    filt = system.shadow_filter
    if filt is None:
        filt = ShadowFilter(system)
        system.shadow_filter = filt
    elif filt.bailed:
        return None
    filt.verify_mode = mode_from_env() == "verify"
    return filt
