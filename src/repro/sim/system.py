"""The simulated CMP: cores, caches, coherence, NOC and memory.

``System.access`` is the whole machine's reaction to one memory
reference: it walks the private hierarchy, the LLC (shared NUCA or the
core's private DRAM vault), the coherence directory and main memory,
updating cache and coherence state and returning the exposed latency in
cycles.  Two organizations are implemented:

* **shared** -- the baseline's non-inclusive MESI with a sharer-table
  directory and an S-NUCA LLC (optionally backed by a conventional
  page-based DRAM cache), also used for Vaults-Sh and the 3-level
  SRAM/eDRAM designs;
* **private_vault** -- SILO: per-core direct-mapped inclusive DRAM
  vaults kept coherent by MOESI with the duplicate-tag directory whose
  metadata lives in the vaults (a directory lookup costs a DRAM access
  at the block's home node unless the directory-cache optimization is
  on).
"""

from repro import params as P
from repro.caches.sram_cache import SetAssocCache
from repro.caches.vault_cache import VaultCache
from repro.caches.nuca import SharedNUCA
from repro.caches.dram_cache import PageDRAMCache
from repro.coherence.states import (
    SHARED, EXCLUSIVE, OWNED, MODIFIED, is_dirty)
from repro.coherence.sharer_table import SharerTable
from repro.coherence.dup_tag_directory import DupTagDirectory
from repro.cores.perf_model import (
    CoreModel, LEVEL_L1, LEVEL_L2, LEVEL_LLC_LOCAL, LEVEL_LLC_REMOTE,
    LEVEL_DRAM_CACHE, LEVEL_MEMORY)
from repro.memory.main_memory import MainMemory
from repro.noc.mesh import Mesh2D
from repro.obs.stats import Group
from repro.obs.trace import (EV_COHERENCE, EV_DIRECTORY, EV_FAULT,
                             EV_INVALIDATE, EV_DOWNGRADE, EV_EVICTION)
from repro.sim import fastpath as _fastpath
from repro.sim.config import LLC_SHARED, LLC_PRIVATE_VAULT


class System:
    """One simulated machine (see module docstring)."""

    def __init__(self, config, core_params):
        """``core_params`` is a list of CoreParams, one per core (they
        may differ under colocation)."""
        if len(core_params) != config.num_cores:
            raise ValueError("need CoreParams for each of %d cores"
                             % config.num_cores)
        self.config = config
        n = config.num_cores
        self.num_cores = n
        self.cores = [CoreModel(c, core_params[c]) for c in range(n)]
        self.mesh = Mesh2D(n, hop_latency=config.hop_latency)

        l1_bytes = config.scaled(config.l1_size_bytes)
        self.l1i = [SetAssocCache(l1_bytes, config.l1_ways)
                    for _ in range(n)]
        self.l1d = [SetAssocCache(l1_bytes, config.l1_ways)
                    for _ in range(n)]
        self.l1_latency = config.l1_latency

        self.l2 = None
        if config.l2_size_bytes:
            l2_bytes = config.scaled(config.l2_size_bytes)
            self.l2 = [SetAssocCache(l2_bytes, config.l2_ways)
                       for _ in range(n)]
        self.l2_latency = config.l2_latency

        self.kind = config.llc_kind
        self.llc_latency = config.llc_latency
        if self.kind == LLC_SHARED:
            llc_bytes = config.scaled(config.llc_size_bytes)
            self.llc = SharedNUCA(llc_bytes, config.llc_ways,
                                  num_banks=n,
                                  bank_latency=config.llc_latency)
            self.sharer_table = SharerTable(n)
            self.vaults = None
            self.directory = None
        else:
            vault_bytes = config.scaled(config.llc_size_bytes)
            self.vaults = [VaultCache(vault_bytes) for _ in range(n)]
            self.directory = DupTagDirectory(self.vaults)
            self.llc = None
            self.sharer_table = None

        self.dram_cache = None
        self.dram_cache_ctrl = None
        if config.dram_cache_bytes:
            self.dram_cache = PageDRAMCache(
                config.scaled(config.dram_cache_bytes))
            # The conventional DRAM cache is built from commodity DRAM:
            # its banks occupy like main memory's (the paper's
            # infinite-bandwidth assumption is optimistic; its own
            # result -- near-zero gain on scale-out -- matches a
            # bandwidth-constrained cache).
            from repro.memory.controller import ClosedPageController
            self.dram_cache_ctrl = [
                ClosedPageController(8, config.dram_cache_latency // 2)
                for _ in range(8)]
        self.dram_cache_latency = config.dram_cache_latency

        self.memory = MainMemory(latency=config.memory_latency,
                                 model_queueing=config.memory_queueing)
        self.local_mp = config.local_miss_predictor
        if self.local_mp is True:
            self.local_mp = "ideal"
        self.dir_cache = config.directory_cache
        if self.dir_cache is True:
            self.dir_cache = "ideal"
        self.missmaps = None
        if self.local_mp == "missmap":
            from repro.caches.missmap import default_missmap_for
            self.missmaps = [default_missmap_for(v.num_sets)
                             for v in (self.vaults or [])]
        self.sram_dir_cache = None
        if self.dir_cache == "sram":
            from repro.coherence.directory_cache import DirectoryCache
            self.sram_dir_cache = DirectoryCache(n)
        self.moesi = config.protocol == "moesi"
        self.victim_replication = config.victim_replication
        self.replica_hits = 0
        self.prefetchers = None
        if config.l1_prefetcher:
            from repro.caches.prefetcher import StridePrefetcher
            self.prefetchers = [StridePrefetcher() for _ in range(n)]
        self.prefetch_fills = 0
        # A directory lookup reads a metadata set, not a 64 B TAD: it
        # pays the DRAM array + controller delay but not the data
        # serialization cycles.
        self.dir_latency = max(
            1, config.llc_latency - P.SILO_SERIALIZATION_LATENCY)

        # Ground truth range of the RW-shared region (Fig. 4 accounting)
        self.rw_shared_range = (0, 0)
        self.measuring = True
        self.now = 0.0
        # Event tracing is off unless attach_tracer is called: every
        # instrumented site costs one `is not None` check when off.
        self.tracer = None
        # Fault injection is off unless attach_faults is called; like
        # the tracer, the disabled cost is one `is not None` check per
        # instrumented site, so fault-off runs stay bit-identical.
        self.faults = None
        # Shadow-filter L1-hit fast path (repro.sim.fastpath): on by
        # default (ambient $REPRO_FASTPATH / use_fastpath override);
        # the run engine overwrites this from RunRequest.fastpath.
        # The filter itself is built lazily by the first eligible
        # _drive -- configs it would disqualify never pay for it.
        self.use_fastpath = _fastpath.default_enabled()
        self.shadow_filter = None

        # System-level counters
        self.llc_accesses = 0          # SRAM bank / DRAM vault accesses
        self.dram_cache_accesses = 0
        self.invalidations = 0
        self.l1_writebacks = 0
        self.llc_writebacks = 0        # dirty evictions leaving the LLC
        self.vault_evictions = 0
        self.directory_lookups = 0
        self.remote_forwards = 0

        # Optional LLC-access sharing classification (Fig. 3)
        self.track_sharing = False
        self.block_readers = {}
        self.block_writers = {}
        self.llc_reads = 0
        self.llc_demand_writes = 0
        self.llc_writes_by_block = {}

        #: Root of the hierarchical stats registry.  Every counter above
        #: (and the per-subsystem ones owned by cores, mesh, memory,
        #: optimization structures and the energy model) is reachable
        #: through it; ``reset_stats`` delegates to its ``reset``.
        self.stats = self._build_stats()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def attach_tracer(self, tracer):
        """Enable event tracing through ``tracer`` (see repro.obs.trace);
        returns the tracer for chaining."""
        self.tracer = tracer
        return tracer

    def attach_faults(self, injector):
        """Enable fault injection through ``injector`` (repro.faults).

        Wires the injector into the memory channels (transient stalls)
        and registers its counters as the ``system.faults`` stats
        group; returns the injector for chaining.
        """
        expected = self.num_cores
        if injector.num_targets != expected:
            raise ValueError(
                "injector built for %d targets, system has %d vaults/"
                "banks" % (injector.num_targets, expected))
        self.faults = injector
        self.memory.attach_faults(injector)
        injector.register_stats(
            self.stats.group("faults", "fault injection and recovery"))
        return injector

    def _build_stats(self):
        """Assemble the stats registry over every subsystem."""
        root = Group("system", "all statistics of one simulated machine")

        caches = root.group("caches", "cache hierarchy counters")
        caches.bind(self, "llc_accesses",
                    desc="SRAM bank / DRAM vault accesses")
        caches.bind(self, "dram_cache_accesses",
                    desc="conventional DRAM cache accesses")
        caches.bind(self, "l1_writebacks", desc="dirty L1 evictions")
        caches.bind(self, "llc_writebacks",
                    desc="dirty evictions leaving the LLC")
        caches.bind(self, "vault_evictions",
                    desc="direct-mapped vault set evictions")
        caches.bind(self, "replica_hits",
                    desc="victim-replication local-bank hits")
        caches.bind(self, "prefetch_fills",
                    desc="stride prefetches issued to the hierarchy")
        if self.prefetchers is not None:
            pf = caches.group("prefetcher", "stride prefetcher totals")
            pf.callback(
                "issued",
                lambda: sum(p.issued for p in self.prefetchers),
                desc="prefetch candidates produced")
            pf.callback(
                "useful",
                lambda: sum(p.hits_observed for p in self.prefetchers),
                desc="observed hits on prefetched strides")

            def _reset_prefetch_stats():
                for p in self.prefetchers:
                    p.reset_stats()
            pf.on_reset(_reset_prefetch_stats)
        if self.missmaps is not None:
            mm = caches.group("missmap", "local miss predictor totals")
            mm.callback(
                "known_misses",
                lambda: sum(m.known_misses for m in self.missmaps),
                desc="probes skipped on predicted misses")
            mm.callback(
                "unknown",
                lambda: sum(m.unknown for m in self.missmaps),
                desc="lookups outside tracked segments")

            def _reset_missmap_stats():
                for m in self.missmaps:
                    m.reset_stats()
            mm.on_reset(_reset_missmap_stats)
        if self.dram_cache_ctrl is not None:
            dcc = caches.group("dram_cache_ctrl",
                               "conventional DRAM cache channels")
            for i, ctrl in enumerate(self.dram_cache_ctrl):
                ctrl.register_stats(dcc.group("channel%d" % i))
                dcc.on_reset(ctrl.reset)

        coh = root.group("coherence", "coherence protocol counters")
        coh.bind(self, "invalidations",
                 desc="peer copies invalidated")
        coh.bind(self, "directory_lookups",
                 desc="home-node directory lookups")
        coh.bind(self, "remote_forwards",
                 desc="cache-to-cache data forwards")
        if self.sram_dir_cache is not None:
            self.sram_dir_cache.register_stats(
                coh.group("directory_cache", "SRAM directory cache"))
        sharing = coh.group("sharing", "Fig. 3 access classification")
        sharing.bind(self, "llc_reads", desc="tracked LLC data reads")
        sharing.bind(self, "llc_demand_writes",
                     desc="tracked LLC demand writes")

        def _reset_sharing():
            self.block_readers = {}
            self.block_writers = {}
            self.llc_writes_by_block = {}
        sharing.on_reset(_reset_sharing)

        self.mesh.register_stats(root.group("noc", "2D mesh"))
        self.memory.register_stats(root.group("memory", "main memory"))

        cores = root.group("cores", "per-core performance model")
        for c in self.cores:
            c.register_stats(cores.group("core%d" % c.core_id))

        from repro.energy import EnergyModel
        EnergyModel().register_stats(
            root.group("energy", "derived energy model (Table III)"),
            self)
        return root

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------

    # silolint: hotpath
    def access(self, core, block, is_write, is_ifetch, now=0.0):
        """Process one reference; returns exposed latency in cycles
        beyond the L1 (an L1 hit returns 0)."""
        self.now = now
        if self.faults is not None:
            # per-event only when fault injection is on (SL007: the
            # chain is behind the is-not-None guard, faults are rare)
            self.faults.tick(self)  # silolint: disable=SL007
        if is_ifetch:
            l1 = self.l1i[core]
            if l1.lookup(block) is not None:
                if self.measuring:
                    c = self.cores[core]
                    c.ifetch_count[LEVEL_L1] += 1
                return 0
            if self.kind == LLC_SHARED:
                lat, level = self._miss_shared(core, block, False, False,
                                               now)
            else:
                lat, level = self._miss_private(core, block, False, False,
                                                now)
            l1.insert(block, SHARED)  # code is read-only: no victim care
            if self.measuring:
                self.cores[core].record_ifetch(level, lat)
            return lat

        l1 = self.l1d[core]
        st = l1.lookup(block)
        if st is not None:
            if is_write and st != MODIFIED:
                self._write_upgrade(core, block, st)
            if self.measuring:
                c = self.cores[core]
                c.data_count[LEVEL_L1] += 1
            if self.prefetchers is not None:
                self._maybe_prefetch(core, block)
            return 0

        if self.kind == LLC_SHARED:
            lat, level = self._miss_shared(core, block, is_write, True,
                                           now)
        else:
            lat, level = self._miss_private(core, block, is_write, True,
                                            now)
        if self.measuring:
            lo, hi = self.rw_shared_range
            self.cores[core].record_data(level, lat,
                                         rw_shared=lo <= block < hi)
        if self.prefetchers is not None:
            self._maybe_prefetch(core, block)
        return lat

    def _maybe_prefetch(self, core, block):
        """Issue a non-blocking stride prefetch into the L1-D: the
        predicted block is fetched through the normal hierarchy (cache
        state and energy are updated) but no stall is charged."""
        candidate = self.prefetchers[core].observe(block)
        if candidate is None or self.l1d[core].contains(candidate):
            return
        measuring = self.measuring
        self.measuring = False
        try:
            if self.kind == LLC_SHARED:
                self._miss_shared(core, candidate, False, True, self.now)
            else:
                self._miss_private(core, candidate, False, True, self.now)
        finally:
            self.measuring = measuring
        # Like every other statistic, prefetch fills only count inside
        # the measurement window (the saved flag: the nested miss above
        # runs with measuring forced off).
        if measuring:
            self.prefetch_fills += 1

    # ------------------------------------------------------------------
    # write upgrades (store hits on non-M lines)
    # ------------------------------------------------------------------

    def _write_upgrade(self, core, block, l1_state):
        """A store hit an L1 line in S/E/O: gain write permission.
        State changes happen; the store latency itself is hidden by the
        store buffer (no stall charged)."""
        if self.tracer is not None:
            self.tracer.emit(EV_COHERENCE, self.now, core, block,
                             "upgrade:%d->M" % l1_state)
        if self.kind == LLC_SHARED:
            if l1_state != EXCLUSIVE:
                self._invalidate_peer_l1s(core, block)
            self.l1d[core].update(block, MODIFIED)
            self.sharer_table.add_sharer(block, core, exclusive=True)
        else:
            if self.faults is not None and self.faults.offline[core]:
                # Degraded mode (vault offline): no M state without a
                # vault to track it -- invalidate peers and write
                # through to memory, keeping the L1 copy Shared.
                self._invalidate_peer_vaults(core, block)
                self.memory.access(block, self.now, is_write=True)
                self.faults.write_throughs += 1
                return
            # While any vault is offline, its core may hold Shared
            # copies the directory cannot see, so even a silent E->M
            # upgrade must sweep peers.
            if l1_state != EXCLUSIVE or (
                    self.faults is not None and self.faults.has_offline):
                self._invalidate_peer_vaults(core, block)
            self.l1d[core].update(block, MODIFIED)
            vault = self.vaults[core]
            if vault.contains(block):
                vault.update(block, MODIFIED)
            if self.l2 is not None and self.l2[core].contains(block):
                self.l2[core].update(block, MODIFIED)

    def _invalidate_replicas(self, block):
        """Victim replication: drop every replica of a written block
        (the home-bank copy is the authoritative one)."""
        home = self.llc.bank_of(block)
        for b, bank in enumerate(self.llc.banks):
            if b != home:
                bank.invalidate(block)

    def _invalidate_peer_l1s(self, core, block):
        """Shared org: invalidate every other core's L1 copy.  Under
        victim replication, stale bank replicas die with them."""
        if self.victim_replication:
            self._invalidate_replicas(block)
        table = self.sharer_table
        mask = table.sharers(block) & ~(1 << core)
        if not mask:
            return
        for s in range(self.num_cores):
            if mask & (1 << s):
                st = self.l1d[s].invalidate(block)
                if st is not None and is_dirty(st):
                    # stale dirty peer: its data reaches the LLC
                    self._insert_llc(s, block, dirty=True)
                if self.l2 is not None:
                    l2st = self.l2[s].invalidate(block)
                    if l2st is not None and is_dirty(l2st):
                        self._insert_llc(s, block, dirty=True)
                table.remove_sharer(block, s)
                self.invalidations += 1
                if self.tracer is not None:
                    self.tracer.emit(EV_INVALIDATE, self.now, s, block,
                                     "peer_l1")

    def _invalidate_peer_vaults(self, core, block):
        """SILO: invalidate the block in every other core's vault (and
        its L1/L2 by inclusion).  Dirty remote copies would be supplied
        to the writer, not written back, under MOESI."""
        s = block % self.vaults[0].num_sets
        for c, vault in enumerate(self.vaults):
            if c == core or vault.tags[s] != block:
                continue
            # Through the method, not raw tag surgery: the fastpath
            # vault shadow (repro.sim.fastpath) hangs off invalidate().
            vault.invalidate(block)
            if self.missmaps is not None:
                self.missmaps[c].record_eviction(block)
            self.l1d[c].invalidate(block)
            self.l1i[c].invalidate(block)
            if self.l2 is not None:
                self.l2[c].invalidate(block)
            self.invalidations += 1
            if self.tracer is not None:
                self.tracer.emit(EV_INVALIDATE, self.now, c, block,
                                 "peer_vault")
        if self.faults is not None and self.faults.has_offline:
            # Cores with an offline vault hold directory-invisible
            # Shared copies; a write must invalidate those too.
            self._invalidate_offline_l1s(core, block)

    # ------------------------------------------------------------------
    # shared-LLC (baseline / Vaults-Sh / 3-level SRAM & eDRAM) path
    # ------------------------------------------------------------------

    def _miss_shared(self, core, block, is_write, is_data, now):
        """L1 miss in a shared-LLC system.  Returns (latency, level)."""
        # Private L2 (3-level hierarchies)
        if self.l2 is not None:
            l2 = self.l2[core]
            st = l2.lookup(block)
            if st is not None:
                lat = self.l2_latency
                self._fill_l1_shared(core, block, is_write, is_data,
                                     from_state=st)
                return lat, LEVEL_L2

        if self.victim_replication and is_data:
            home_bank = self.llc.bank_of(block)
            if home_bank != core:
                local = self.llc.banks[core]
                if local.lookup(block) is not None:
                    # replica hit in the local bank: no mesh traversal
                    self.llc_accesses += 1
                    self.replica_hits += 1
                    lat = (self.mesh.INJECTION_OVERHEAD
                           + self.llc.bank_latency)
                    self._fill_l1_shared(core, block, is_write, True,
                                         from_state=None)
                    if is_write:
                        self._invalidate_replicas(block)
                    return lat, LEVEL_LLC_LOCAL

        bank = self.llc.bank_of(block)
        bank_offline = (self.faults is not None
                        and self.faults.offline[bank])
        lat = self.mesh.round_trip(core, bank)
        if bank_offline:
            # The bank's controller forwards the request off-chip
            # without touching the (drained) data array.
            self.faults.remapped_accesses += 1
        else:
            lat += self.llc.bank_latency
            self.llc_accesses += 1
        if self.track_sharing and is_data:
            if is_write:
                self.llc_demand_writes += 1
                self.block_writers[block] = (
                    self.block_writers.get(block, 0) | (1 << core))
                self.llc_writes_by_block[block] = (
                    self.llc_writes_by_block.get(block, 0) + 1)
            else:
                self.llc_reads += 1
                self.block_readers[block] = (
                    self.block_readers.get(block, 0) | (1 << core))

        level = LEVEL_LLC_LOCAL
        served = False
        if is_data:
            # A peer L1 may hold the line dirty (non-inclusive MESI).
            owner = self.sharer_table.owner(block)
            if owner != SharerTable.NO_OWNER and owner != core:
                owner_state = self.l1d[owner].lookup(block, touch=False)
                if owner_state is not None:
                    # Forward from the peer; dirty data is also written
                    # back to the LLC (MESI downgrade M->S).
                    lat += (self.mesh.latency(bank, owner)
                            + self.l1_latency
                            + self.mesh.latency(owner, core))
                    self.remote_forwards += 1
                    if owner_state == MODIFIED:
                        self._insert_llc(owner, block, dirty=True)
                    self.l1d[owner].update(block, SHARED)
                    self.sharer_table.clear_owner(block)
                    level = LEVEL_LLC_REMOTE
                    served = True

        if not served:
            st = None if bank_offline else self.llc.lookup(block)
            if st is not None and self.faults is not None:
                if self._shared_llc_fault(bank, block, st):
                    st = None  # uncorrectable: line gone, miss instead
            if st is not None:
                served = True
            else:
                lat2, level = self._off_chip_shared(core, block, is_write,
                                                    now)
                lat += lat2
                self._insert_llc(core, block, dirty=False)

        if self.l2 is not None:
            l2victim = self.l2[core].insert(block, SHARED)
            if l2victim is not None:
                self._handle_l2_victim(core, l2victim)
        self._fill_l1_shared(core, block, is_write, is_data,
                             from_state=None)
        return lat, level

    def _off_chip_shared(self, core, block, is_write, now):
        """LLC miss: conventional DRAM cache (if any), then memory."""
        port = self.mesh.nearest_memory_port(core)
        noc = 2 * self.mesh.latency(core, port)
        if self.dram_cache is not None:
            self.dram_cache_accesses += 1
            if self.dram_cache.lookup_block(block):
                ctrl = self.dram_cache_ctrl[(block >> 3) % 8]
                queue = ctrl.access(block, self.now)
                return (noc + self.dram_cache_latency + queue,
                        LEVEL_DRAM_CACHE)
            # Perfect miss prediction: no wasted DRAM$ probe.  Fill the
            # page from memory in the background.
            victim = self.dram_cache.fill(block)
            if victim is not None and victim[1]:
                self.memory.access(block, self.now, is_write=True)
        return (noc + self.memory.access(block, now), LEVEL_MEMORY)

    def _insert_llc(self, core, block, dirty):
        """Allocate a block in the shared LLC; handles dirty victims."""
        if (self.faults is not None
                and self.faults.offline[self.llc.bank_of(block)]):
            # Home bank offline: nothing to allocate into; dirty data
            # goes straight to memory instead.
            self.faults.remapped_accesses += 1
            if dirty:
                self.memory.access(block, self.now, is_write=True)
            return
        self.llc_accesses += 1
        if self.track_sharing and dirty:
            self.block_writers[block] = (
                self.block_writers.get(block, 0) | (1 << core))
            self.llc_writes_by_block[block] = (
                self.llc_writes_by_block.get(block, 0) + 1)
        existing = self.llc.lookup(block, touch=False)
        if existing is not None:
            if dirty:
                self.llc.update(block, True)
            return
        victim = self.llc.insert(block, dirty)
        if victim is not None and victim[1]:
            self.llc_writebacks += 1
            vb = victim[0]
            if self.dram_cache is not None:
                self.dram_cache_accesses += 1
                if self.dram_cache.lookup_block(vb):
                    self.dram_cache.touch_write(vb)
                else:
                    dvic = self.dram_cache.fill(vb, dirty=True)
                    if dvic is not None and dvic[1]:
                        self.memory.access(vb, self.now, is_write=True)
            else:
                self.memory.access(vb, self.now, is_write=True)

    def _handle_l2_victim(self, core, victim):
        """L2 eviction: the block leaves the core's private hierarchy
        entirely (L1 inclusion enforced), so its sharer entry is
        dropped; dirty data (in either level) reaches the LLC."""
        vb, vst = victim
        l1st = self.l1d[core].invalidate(vb)
        self.l1i[core].invalidate(vb)
        if l1st is not None and is_dirty(l1st):
            vst = MODIFIED
        self.sharer_table.remove_sharer(vb, core)
        if is_dirty(vst):
            self._insert_llc(core, vb, dirty=True)

    def _fill_l1_shared(self, core, block, is_write, is_data, from_state):
        """Fill the L1 after a shared-org miss, with MESI state."""
        if not is_data:
            return  # the ifetch path fills L1-I at the call site
        table = self.sharer_table
        if is_write:
            self._invalidate_peer_l1s(core, block)
            state = MODIFIED
            table.add_sharer(block, core, exclusive=True)
        else:
            others = table.sharers(block) & ~(1 << core)
            state = EXCLUSIVE if others == 0 else SHARED
            table.add_sharer(block, core, exclusive=others == 0)
        victim = self.l1d[core].insert(block, state)
        if victim is not None:
            vb, vst = victim
            table.remove_sharer(vb, core)
            if is_dirty(vst):
                self.l1_writebacks += 1
                if self.l2 is not None:
                    self.l2[core].insert(vb, MODIFIED)
                    # (victim of this insert handled lazily on next use)
                else:
                    self._insert_llc(core, vb, dirty=True)
            elif (self.victim_replication
                  and self.llc.bank_of(vb) != core
                  and not (self.faults is not None
                           and self.faults.offline[core])):
                # clean victim: keep a low-priority replica in the
                # local bank (LRU position: replicas earn retention by
                # being re-referenced, they never displace hot blocks
                # on arrival)
                self.llc.banks[core].insert_cold(vb, False)
                self.llc_accesses += 1

    # ------------------------------------------------------------------
    # SILO (private vault) path
    # ------------------------------------------------------------------

    def _miss_private(self, core, block, is_write, is_data, now):
        """L1 miss in SILO.  Returns (latency, level)."""
        faults = self.faults
        if faults is None and self.l2 is None and self.tracer is None:
            # The shape every headline run takes (no fault injector, no
            # L2 level, no event tracer): a flattened replica of the
            # path below with the per-feature branches removed and the
            # single-use helpers inlined.  Misses are where suite time
            # goes (DESIGN.md Sec. 2f), and the call fan-out here was
            # the largest single cost on miss-bound workloads.  Every
            # operation runs in the original order, so results are
            # bit-identical; the differential pin suite holds both
            # paths together.
            return self._miss_private_plain(core, block, is_write,
                                            is_data, now)
        if self.l2 is not None:
            l2 = self.l2[core]
            st = l2.lookup(block)
            if st is not None:
                if is_write and st != MODIFIED:
                    if faults is not None and faults.offline[core]:
                        # degraded mode: stores write through, the
                        # on-chip copies stay Shared (no vault to
                        # anchor an M line)
                        self._invalidate_peer_vaults(core, block)
                        self.memory.access(block, self.now,
                                           is_write=True)
                        faults.write_throughs += 1
                    else:
                        # treat as an upgrade through the normal
                        # machinery (sweep peers on E->M too while any
                        # vault is offline: see _write_upgrade)
                        if st != EXCLUSIVE or (faults is not None
                                               and faults.has_offline):
                            self._invalidate_peer_vaults(core, block)
                        l2.update(block, MODIFIED)
                        vault = self.vaults[core]
                        if vault.contains(block):
                            vault.update(block, MODIFIED)
                        st = MODIFIED
                self._fill_l1_private(core, block, is_write, is_data, st)
                return self.l2_latency, LEVEL_L2

        offline = faults is not None and faults.offline[core]
        vault = self.vaults[core]
        if not offline:
            vst = vault.lookup(block)
            if vst is not None:
                # Local vault hit: one TAD access resolves tag + data.
                lat = self.llc_latency
                self.llc_accesses += 1
                if faults is not None:
                    vst, fault_lat = self._vault_hit_faults(core, block,
                                                            vst)
                    lat += fault_lat
                if is_write and vst != MODIFIED:
                    if vst != EXCLUSIVE or (faults is not None
                                            and faults.has_offline):
                        self._invalidate_peer_vaults(core, block)
                    vault.update(block, MODIFIED)
                    vst = MODIFIED
                self._fill_private_levels(core, block, is_write, is_data,
                                          vst)
                return lat, LEVEL_LLC_LOCAL

        # Local vault miss (or the vault is offline and is bypassed).
        if offline:
            faults.remapped_accesses += 1
            probe_skipped = True
        elif self.local_mp == "ideal":
            probe_skipped = True
        elif self.missmaps is not None:
            probe_skipped = self.missmaps[core].predicts_miss(block)
        else:
            probe_skipped = False
        lat = 0 if probe_skipped else self.llc_latency
        if not probe_skipped:
            self.llc_accesses += 1  # the probe that discovered the miss
        home = block % self.num_cores
        lat += self.mesh.latency(core, home)
        self.directory_lookups += 1
        if self.tracer is not None:
            self.tracer.emit(EV_DIRECTORY, self.now, home, block,
                             "write" if is_write else "read")
        home_offline = faults is not None and faults.offline[home]
        if home_offline:
            # The home vault physically stores this block's directory
            # set; with it offline, the home node falls back to
            # broadcast-snooping every online vault's tag array.
            lat += self._broadcast_snoop(home)
        elif self.dir_cache == "ideal":
            pass  # metadata always in SRAM, zero cost
        elif self.sram_dir_cache is not None:
            dir_set = block % self.vaults[0].num_sets
            if not self.sram_dir_cache.lookup(home, dir_set):
                lat += self.dir_latency
                self.llc_accesses += 1
        else:
            lat += self.dir_latency  # directory metadata is in DRAM
            self.llc_accesses += 1
        if faults is not None and not home_offline:
            lat += self._directory_faults(home, block)

        holders = self.directory.holder_states(block)
        new_state = MODIFIED if is_write else EXCLUSIVE
        if holders:
            if is_write:
                self._invalidate_peer_vaults(core, block)
                # data supplied by the (former) owner before invalidation
                supplier = holders[0][0]
                lat += (self.mesh.latency(home, supplier)
                        + self.llc_latency
                        + self.mesh.latency(supplier, core))
                self.llc_accesses += 1
                self.remote_forwards += 1
                level = LEVEL_LLC_REMOTE
            else:
                supplier, sup_state = max(
                    holders, key=lambda cs: cs[1])  # prefer M > O > E > S
                lat += (self.mesh.latency(home, supplier)
                        + self.llc_latency
                        + self.mesh.latency(supplier, core))
                self.llc_accesses += 1
                self.remote_forwards += 1
                self._downgrade_supplier(supplier, block, sup_state)
                new_state = SHARED
                level = LEVEL_LLC_REMOTE
        else:
            port = self.mesh.nearest_memory_port(home)
            lat += (self.mesh.latency(home, port)
                    + self.memory.access(block, now)
                    + self.mesh.latency(port, core))
            level = LEVEL_MEMORY
            if is_write and faults is not None and faults.has_offline:
                # no holders, so _invalidate_peer_vaults did not run;
                # directory-invisible offline copies still need killing
                self._invalidate_offline_l1s(core, block)

        if offline:
            # No vault to fill: the line lives in L1/L2 only, kept
            # Shared; stores write through so memory stays current.
            self._fill_private_levels(core, block, is_write, is_data,
                                      SHARED)
            if is_write:
                self.memory.access(block, self.now, is_write=True)
                faults.write_throughs += 1
            return lat, level
        self._fill_vault(core, block, new_state)
        self._fill_private_levels(core, block, is_write, is_data,
                                  new_state)
        return lat, level

    def _miss_private_plain(self, core, block, is_write, is_data, now):
        """Flattened ``_miss_private`` for the common shape (no fault
        injector, no L2, no tracer): identical operations in identical
        order with the single-use helpers (``_fill_vault``,
        ``_fill_private_levels``, ``_fill_l1_private``, the mesh/memory
        frontends) inlined.  Keep the two bodies in lockstep -- the
        fastpath differential pins run both."""
        vault = self.vaults[core]
        s = block % vault.num_sets
        if vault.tags[s] == block:
            # Local vault hit: one TAD access resolves tag + data.
            vst = vault.states[s]
            self.llc_accesses += 1
            if is_write and vst != MODIFIED:
                if vst != EXCLUSIVE:
                    self._invalidate_peer_vaults(core, block)
                vault.update(block, MODIFIED)
                vst = MODIFIED
            if is_data:
                victim = self.l1d[core].insert(
                    block, MODIFIED if is_write else vst)
                if victim is not None:
                    vb, vstate = victim
                    if is_dirty(vstate):
                        self.l1_writebacks += 1
                        if vault.tags[vb % vault.num_sets] == vb:
                            self.llc_accesses += 1
            return self.llc_latency, LEVEL_LLC_LOCAL

        # Local vault miss.
        if self.local_mp == "ideal":
            probe_skipped = True
        elif self.missmaps is not None:
            probe_skipped = self.missmaps[core].predicts_miss(block)
        else:
            probe_skipped = False
        if probe_skipped:
            lat = 0
        else:
            lat = self.llc_latency
            self.llc_accesses += 1  # the probe that discovered the miss
        mesh = self.mesh
        hops_tbl = mesh._hops
        hop_lat = mesh.hop_latency
        home = block % self.num_cores
        h = hops_tbl[core][home]
        mesh.link_traversals += h
        lat += h * hop_lat
        self.directory_lookups += 1
        if self.dir_cache == "ideal":
            pass  # metadata always in SRAM, zero cost
        elif self.sram_dir_cache is not None:
            dir_set = block % self.vaults[0].num_sets
            if not self.sram_dir_cache.lookup(home, dir_set):
                lat += self.dir_latency
                self.llc_accesses += 1
        else:
            lat += self.dir_latency  # directory metadata is in DRAM
            self.llc_accesses += 1

        holders = self.directory.holder_states(block)
        new_state = MODIFIED if is_write else EXCLUSIVE
        if holders:
            if is_write:
                self._invalidate_peer_vaults(core, block)
                # data supplied by the (former) owner before invalidation
                supplier = holders[0][0]
                lat += (mesh.latency(home, supplier)
                        + self.llc_latency
                        + mesh.latency(supplier, core))
                self.llc_accesses += 1
                self.remote_forwards += 1
                level = LEVEL_LLC_REMOTE
            else:
                supplier, sup_state = max(
                    holders, key=lambda cs: cs[1])  # prefer M > O > E > S
                lat += (mesh.latency(home, supplier)
                        + self.llc_latency
                        + mesh.latency(supplier, core))
                self.llc_accesses += 1
                self.remote_forwards += 1
                self._downgrade_supplier(supplier, block, sup_state)
                new_state = SHARED
                level = LEVEL_LLC_REMOTE
        else:
            port = mesh._nearest[home]
            h2 = hops_tbl[home][port]
            h3 = hops_tbl[port][core]
            mesh.link_traversals += h2 + h3
            mem = self.memory
            mem.reads += 1
            mlat = mem.latency
            if mem.model_queueing:
                mlat += mem.controllers[
                    (block >> 3) % mem.num_channels].access(block, now)
            lat += h2 * hop_lat + mlat + h3 * hop_lat
            level = LEVEL_MEMORY

        # _fill_vault, inlined (tracer/missmap branches preserved).
        victim = vault.insert(block, new_state)
        self.llc_accesses += 1  # the fill write
        if self.missmaps is not None:
            mm = self.missmaps[core]
            mm.record_fill(block)
            if victim is not None:
                mm.record_eviction(victim[0])
        if victim is not None:
            vb, vst2 = victim
            self.vault_evictions += 1
            l1st = self.l1d[core].invalidate(vb)
            self.l1i[core].invalidate(vb)
            if (l1st is not None and is_dirty(l1st)) or is_dirty(vst2):
                self.memory.access(vb, self.now, is_write=True)
        # _fill_private_levels -> _fill_l1_private, inlined (no L2).
        if is_data:
            victim = self.l1d[core].insert(
                block, MODIFIED if is_write else new_state)
            if victim is not None:
                vb2, vst3 = victim
                if is_dirty(vst3):
                    self.l1_writebacks += 1
                    # Inclusive: the dirty data lands in the vault.
                    if vault.tags[vb2 % vault.num_sets] == vb2:
                        self.llc_accesses += 1
        return lat, level

    def _downgrade_supplier(self, supplier, block, sup_state):
        """MOESI read response: a dirty holder keeps ownership as O, a
        clean holder drops to S; its L1 copy follows.  Under the MESI
        ablation the dirty holder must write back to memory first and
        both copies end up Shared -- the cost the O state avoids
        (Sec. V-B)."""
        if sup_state in (MODIFIED, OWNED):
            if self.moesi:
                new = OWNED
            else:
                self.memory.access(block, self.now, is_write=True)
                new = SHARED
        else:
            new = SHARED
        if self.tracer is not None:
            self.tracer.emit(EV_DOWNGRADE, self.now, supplier, block,
                             "%d->%d" % (sup_state, new))
        self.vaults[supplier].update(block, new)
        l1 = self.l1d[supplier]
        l1st = l1.lookup(block, touch=False)
        if l1st is not None and l1st != new:
            if l1st == MODIFIED:
                self.llc_accesses += 1  # fresh data copied down to vault
            l1.update(block, new)
        if self.l2 is not None:
            l2 = self.l2[supplier]
            if l2.contains(block):
                l2.update(block, new)

    def _fill_vault(self, core, block, state):
        """Fill the core's direct-mapped vault, evicting the set's
        current resident (inclusion: the victim leaves L1/L2 too; dirty
        victims are written back to memory)."""
        vault = self.vaults[core]
        victim = vault.insert(block, state)
        self.llc_accesses += 1  # the fill write
        if self.missmaps is not None:
            self.missmaps[core].record_fill(block)
            if victim is not None:
                self.missmaps[core].record_eviction(victim[0])
        if victim is None:
            return
        vb, vst = victim
        self.vault_evictions += 1
        if self.tracer is not None:
            self.tracer.emit(EV_EVICTION, self.now, core, vb,
                             "dirty" if is_dirty(vst) else "clean")
        l1st = self.l1d[core].invalidate(vb)
        self.l1i[core].invalidate(vb)
        if self.l2 is not None:
            self.l2[core].invalidate(vb)
        if (l1st is not None and is_dirty(l1st)) or is_dirty(vst):
            self.memory.access(vb, self.now, is_write=True)

    def _fill_private_levels(self, core, block, is_write, is_data, state):
        """Fill L2 (if present) and L1 after a vault/remote/memory
        response in SILO."""
        if self.faults is not None and self.faults.offline[core]:
            state = SHARED  # degraded mode: no dirty on-chip state
        if self.l2 is not None:
            l2victim = self.l2[core].insert(block, state)
            if l2victim is not None:
                vb, vst = l2victim
                l1st = self.l1d[core].invalidate(vb)
                self.l1i[core].invalidate(vb)
                if l1st is not None and is_dirty(l1st):
                    # dirty data returns to the (inclusive) vault
                    if self.vaults[core].contains(vb):
                        self.vaults[core].update(vb, MODIFIED)
                        self.llc_accesses += 1
        self._fill_l1_private(core, block, is_write, is_data, state)

    def _fill_l1_private(self, core, block, is_write, is_data, state):
        if not is_data:
            return
        if self.faults is not None and self.faults.offline[core]:
            l1state = SHARED  # degraded mode: stores write through
        else:
            l1state = MODIFIED if is_write else state
        victim = self.l1d[core].insert(block, l1state)
        if victim is not None:
            vb, vst = victim
            if is_dirty(vst):
                self.l1_writebacks += 1
                # Inclusive hierarchy: the dirty data lands in the vault
                # (or L2), which already tracks the block as M.
                if self.l2 is None and self.vaults[core].contains(vb):
                    self.llc_accesses += 1

    # ------------------------------------------------------------------
    # fault injection and recovery (repro.faults)
    # ------------------------------------------------------------------

    def _vault_hit_faults(self, core, block, vst):
        """Tag- and data-array fault draws on a local vault hit.

        Returns the possibly-degraded coherence state and any extra
        recovery latency.  Corrected single-bit flips cost nothing (the
        vault controller fixes them in flight); detected-uncorrectable
        flips invalidate the line and refetch it from memory.
        """
        faults = self.faults
        vault = self.vaults[core]
        tag_ok = faults.tag_fault(
            core, vault.metadata_word(vault.set_index(block)))
        data_ok = None
        if tag_ok is not False:
            data_ok = faults.data_fault(core, block)
        if tag_ok is False or data_ok is False:
            kind = "tag" if tag_ok is False else "data"
            return self._vault_uncorrectable(core, block, vst, kind)
        return vst, 0.0

    def _vault_uncorrectable(self, core, block, vst, kind):
        """Recover a resident vault line from a detected-uncorrectable
        ECC error: invalidate and refetch from memory.

        If the vault copy was the only up-to-date one (dirty, with no
        surviving on-chip copy above it), the data is gone -- a
        declared data-loss event.  A dirty line whose L1/L2 still holds
        a copy is written back from there first (recovered).  The
        refill is clean, so Modified drops to Exclusive and Owned to
        Shared (its peers' Shared copies stay valid).
        """
        faults = self.faults
        vault = self.vaults[core]
        dirty = is_dirty(vst)
        l1st = self.l1d[core].invalidate(block)
        l1ist = self.l1i[core].invalidate(block)
        l2st = None
        if self.l2 is not None:
            l2st = self.l2[core].invalidate(block)
        vault.invalidate(block)
        if self.missmaps is not None:
            self.missmaps[core].record_eviction(block)
        recovered = (l1st is not None or l1ist is not None
                     or l2st is not None)
        if dirty:
            if recovered:
                # an on-chip copy above the vault still has the data
                self.memory.access(block, self.now, is_write=True)
            else:
                faults.data_loss_events += 1
        faults.refetches += 1
        if self.tracer is not None:
            self.tracer.emit(
                EV_FAULT, self.now, core, block,
                "%s_uncorrectable:%s" % (
                    kind,
                    "data_loss" if dirty and not recovered else "refetch"))
        port = self.mesh.nearest_memory_port(core)
        lat = (self.mesh.latency(core, port)
               + self.memory.access(block, self.now)
               + self.mesh.latency(port, core))
        new_state = SHARED if vst in (SHARED, OWNED) else EXCLUSIVE
        vault.insert(block, new_state)
        self.llc_accesses += 1  # the refill write
        if self.missmaps is not None:
            self.missmaps[core].record_fill(block)
        return new_state, lat

    def _shared_llc_fault(self, bank, block, dirty):
        """Data-array fault draw on a shared-LLC bank hit.  Returns
        True when the line was lost to an uncorrectable error (the
        caller falls through to the off-chip path and refills clean).
        """
        faults = self.faults
        ok = faults.data_fault(bank, block)
        if ok is not False:
            return False
        if dirty:
            faults.data_loss_events += 1
        faults.refetches += 1
        self.llc.invalidate(block)
        if self.tracer is not None:
            self.tracer.emit(
                EV_FAULT, self.now, bank, block,
                "data_uncorrectable:%s" % (
                    "data_loss" if dirty else "refetch"))
        return True

    def _directory_faults(self, home, block):
        """Directory-entry fault draw at a home-node lookup; returns
        extra recovery latency.  A corrected flip is scrubbed in place;
        an uncorrectable one rebuilds the whole set from the vault tag
        arrays it mirrors, costing one more metadata access."""
        verdict = self.faults.directory_fault(self.directory, home,
                                              block)
        if verdict is None:
            return 0.0
        if self.tracer is not None:
            self.tracer.emit(EV_FAULT, self.now, home, block,
                             "directory_" + verdict)
        if verdict == "rebuilt":
            self.llc_accesses += 1  # re-reading the mirrored vault tags
            return float(self.dir_latency)
        return 0.0

    def _broadcast_snoop(self, home):
        """Directory fallback when the home vault is offline: the home
        node queries every online vault's tag array directly.  Probes
        proceed in parallel, so the farthest online peer bounds the
        latency."""
        faults = self.faults
        faults.broadcast_snoops += 1
        worst = 0
        for c in range(self.num_cores):
            if faults.offline[c]:
                continue
            self.llc_accesses += 1  # each online vault checks its tags
            hops = self.mesh.latency(home, c)
            if hops > worst:
                worst = hops
        return 2 * worst + self.llc_latency

    def _invalidate_offline_l1s(self, core, block):
        """Kill directory-invisible copies: cores whose vault is
        offline cache read-only Shared lines the duplicate-tag
        directory cannot track, so writes broadcast an invalidation to
        them.  Offline copies are never dirty (write-through), so they
        are simply dropped."""
        faults = self.faults
        for c in range(self.num_cores):
            if c == core or not faults.offline[c]:
                continue
            hit = self.l1d[c].invalidate(block) is not None
            if self.l1i[c].invalidate(block) is not None:
                hit = True
            if (self.l2 is not None
                    and self.l2[c].invalidate(block) is not None):
                hit = True
            if hit:
                self.invalidations += 1
                if self.tracer is not None:
                    self.tracer.emit(EV_INVALIDATE, self.now, c, block,
                                     "offline_l1")

    def _apply_vault_event(self, target, action):
        """Apply a scheduled whole-vault (or shared-bank) offline /
        online transition from the fault plan."""
        faults = self.faults
        if not 0 <= target < self.num_cores:
            raise ValueError("vault event targets %r; system has %d "
                             "vaults/banks" % (target, self.num_cores))
        if action == "offline":
            if faults.offline[target]:
                return
            if self.kind == LLC_SHARED:
                self._drain_bank(target)
            else:
                self._drain_vault(target)
            faults.set_offline(target, True)
            faults.offline_events += 1
        else:
            if not faults.offline[target]:
                return
            if self.kind != LLC_SHARED:
                # Drop the core's (clean, write-through) degraded-mode
                # copies so everything it caches next is vault-tracked.
                self.l1d[target].clear()
                self.l1i[target].clear()
                if self.l2 is not None:
                    self.l2[target].clear()
            faults.set_offline(target, False)
            faults.online_events += 1
        if self.tracer is not None:
            self.tracer.emit(EV_FAULT, self.now, target, -1,
                             "vault_" + action)

    def _drain_vault(self, core):
        """Take a private vault offline: write dirty lines back to
        memory, invalidate everything above it (inclusion) and clear
        the arrays.  The duplicate-tag directory stays consistent
        automatically -- an empty vault simply has no entries."""
        faults = self.faults
        vault = self.vaults[core]
        for vb, vst in list(vault.blocks()):
            l1st = self.l1d[core].invalidate(vb)
            self.l1i[core].invalidate(vb)
            l2st = None
            if self.l2 is not None:
                l2st = self.l2[core].invalidate(vb)
            if self.missmaps is not None:
                self.missmaps[core].record_eviction(vb)
            if (is_dirty(vst) or (l1st is not None and is_dirty(l1st))
                    or (l2st is not None and is_dirty(l2st))):
                self.memory.access(vb, self.now, is_write=True)
                faults.drained_dirty += 1
        vault.clear()
        # Inclusion means nothing survives above an empty vault, but
        # clear explicitly so degraded mode starts from a known state.
        self.l1d[core].clear()
        self.l1i[core].clear()
        if self.l2 is not None:
            self.l2[core].clear()

    def _drain_bank(self, bank_id):
        """Take a shared-LLC bank offline: flush dirty lines to memory
        and clear it.  L1 coherence is unaffected (the sharer table is
        SRAM at the tiles, not in the bank)."""
        faults = self.faults
        bank = self.llc.banks[bank_id]
        for vb, dirty in list(bank.blocks()):
            if dirty:
                self.memory.access(vb, self.now, is_write=True)
                faults.drained_dirty += 1
        bank.clear()

    # ------------------------------------------------------------------
    # statistics helpers
    # ------------------------------------------------------------------

    def reset_stats(self):
        """Zero all measurement state (after warmup).

        Delegates to the stats registry, which owns the complete list
        of resettable statistics -- including ones the pre-registry
        code forgot (replica hits, prefetch fills, directory-cache and
        missmap counters).  Architectural state (cache contents,
        predictor tables) is never touched."""
        self.stats.reset()

    def occupancy_by_bank(self):
        """Per-bank occupancy fractions (resident blocks over capacity)
        of the LLC level: one entry per NUCA bank (shared) or per vault
        cache (private) -- the telemetry heatmap series
        (repro.obs.telemetry)."""
        banks = self.llc.banks if self.llc is not None else self.vaults
        return [bank.occupancy() / bank.capacity_blocks
                for bank in banks]

    def sharing_breakdown(self):
        """Fig. 3 classification of LLC accesses: (reads,
        writes_nosharing, writes_rwsharing).  Requires
        ``track_sharing``."""
        rw_writes = 0
        total_writes = 0
        for block, count in self.llc_writes_by_block.items():
            total_writes += count
            writers = self.block_writers.get(block, 0)
            readers = self.block_readers.get(block, 0)
            if writers and (readers & ~writers):
                rw_writes += count
        return (self.llc_reads, total_writes - rw_writes, rw_writes)
