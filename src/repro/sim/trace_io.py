"""Trace persistence: save/load generated traces as .npz archives.

Lets long traces be generated once and replayed across many system
configurations (or shared between machines) without regeneration cost.
The archive stores, per core: block numbers, flags, the instruction
rate and the prewarm length, plus the layout needed to restore
RW-shared attribution.
"""

import json

import numpy as np

from repro.workloads.generator import CoreTrace, TraceLayout


def save_traces(path, traces, layout=None):
    """Write traces (and optionally their layout) to ``path`` (.npz)."""
    if not traces:
        raise ValueError("no traces to save")
    arrays = {}
    meta = {"core_ids": [], "instr_per_event": [], "prewarm_events": []}
    for tr in traces:
        arrays["blocks_%d" % tr.core_id] = np.asarray(tr.blocks,
                                                      dtype=np.int64)
        arrays["flags_%d" % tr.core_id] = np.asarray(tr.flags,
                                                     dtype=np.int64)
        meta["core_ids"].append(tr.core_id)
        meta["instr_per_event"].append(tr.instr_per_event)
        meta["prewarm_events"].append(tr.prewarm_events)
    if layout is not None:
        meta["layout"] = {
            "code_range": list(layout.code_range),
            "region_ranges": {k: list(v)
                              for k, v in layout.region_ranges.items()},
            "rw_shared_range": list(layout.rw_shared_range),
            "total_blocks": layout.total_blocks,
        }
    arrays["meta_json"] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8)
    np.savez_compressed(path, **arrays)


def load_traces(path):
    """Read traces back; returns (traces, layout_or_None)."""
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta_json"]).decode())
        traces = []
        for i, core_id in enumerate(meta["core_ids"]):
            traces.append(CoreTrace(
                core_id=core_id,
                blocks=data["blocks_%d" % core_id].tolist(),
                flags=data["flags_%d" % core_id].tolist(),
                instr_per_event=meta["instr_per_event"][i],
                prewarm_events=meta["prewarm_events"][i],
            ))
    layout = None
    if "layout" in meta:
        lm = meta["layout"]
        layout = TraceLayout(
            code_range=tuple(lm["code_range"]),
            region_ranges={k: tuple(v)
                           for k, v in lm["region_ranges"].items()},
            rw_shared_range=tuple(lm["rw_shared_range"]),
            total_blocks=lm["total_blocks"],
        )
    return traces, layout
