"""Parallel, memoized run engine for experiment grids.

Every figure in the reproduction is a grid of *independent,
deterministic* simulation points: a system configuration, a workload
placement, a sampling plan and a seed fully determine the result.  The
engine exploits exactly that:

* a :class:`RunRequest` is the canonical, hashable description of one
  point (it also covers heterogeneous colocation placements, so the
  SPEC mixes and the isolation study key the same way);
* :class:`RunEngine` fans a batch of requests out over a
  ``ProcessPoolExecutor`` (``--jobs N`` / ``$REPRO_JOBS``; ``jobs=1``
  is a plain in-process loop), deduplicating identical points first;
* a :class:`RunCache` memoizes finished points on disk, keyed by a
  content hash of the request *and* a fingerprint of the simulator's
  own source (git sha + per-file digests), so results survive across
  figures and sessions but never across code changes;
* a :class:`RunSummary` is the picklable, JSON-able result of one
  point -- per-core per-level latency sums and counts, latency
  histograms, retired instructions, RW-shared splits, system counters,
  the energy breakdown -- rich enough that every re-evaluation helper
  of :class:`~repro.sim.driver.RunResult` (``performance`` under level
  scaling, RW-shared multipliers, ...) re-runs from the summary without
  re-simulating.

Experiment modules declare their grids and call :func:`run_grid`; the
CLI installs a configured engine with :func:`use_engine`.  When no
engine is installed, a default one is built from the environment
(``$REPRO_JOBS``, ``$REPRO_CACHE_DIR``) -- serial and cache-less unless
those are set, so library calls and the test suite stay hermetic.

Observation sessions interact with the engine as follows: a session
that collects stats or traces needs live ``System`` objects, so the
engine bypasses the cache and the process pool and simulates in-process
(results are bit-identical either way; sessions stay inert).  A session
that only collects manifests works in every mode -- points executed
in-process are recorded by ``run_system`` as before, while cached and
worker-executed points are recorded from their summaries.
"""

import functools
import hashlib
import json
import os
import pickle
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import List, Optional, Tuple

from repro.cores.perf_model import (
    CoreParams, NUM_LEVELS, LEVEL_NAMES, LEVEL_LLC_LOCAL,
    LEVEL_LLC_REMOTE, LEVEL_DRAM_CACHE, LEVEL_MEMORY)
from repro.faults.plan import FaultPlan, current_plan
from repro.obs import manifest as _manifest
from repro.obs import session as _obs_session
from repro.obs.profile import clock
from repro.obs.recorder import FlightRecorder
from repro.obs.stats import Distribution, Group
from repro.sim.config import HierarchyConfig, LLC_PRIVATE_VAULT
from repro.sim.driver import DEFAULT_CHUNK, default_chunk, run_system
from repro.sim.fastpath import default_enabled
from repro.sim.sampling import SamplingPlan
from repro.workloads.base import WorkloadSpec

#: Bump when RunSummary's shape or the request canonicalization
#: changes: stale cache entries must not satisfy new-schema lookups.
#: /2: requests carry an optional FaultPlan (keys and summaries of
#: faulted runs must never alias fault-free ones).
#: /3: requests record the fast-path setting.  The shadow-filter
#: kernel is bit-identical to the reference loop, but the key must
#: say *how* a summary was produced so a cached result can always be
#: traced back to the exact execution path that made it.
#: /4: requests carry an execution mode ("simulate" or "estimate",
#: repro.analytic.estimator) and summaries record it.  An analytic
#: estimate is an approximation with a documented error envelope --
#: it must never replay from a simulate-mode cache entry, nor the
#: other way around, so the mode is part of the canonical request.
ENGINE_SCHEMA = "silo-repro-runsummary/4"

#: Execution modes a RunRequest may carry ("auto" is an engine-level
#: triage policy, never a request mode: triage resolves each point to
#: one of these two before keying).
REQUEST_MODES = ("simulate", "estimate")

#: Engine-level execution policies (--mode): "simulate" runs every
#: point through the trace-driven simulator, "estimate" resolves
#: estimator-capable points analytically, "auto" estimates whole grids
#: and falls back to simulation outside the validated error envelope
#: or near a shared-vs-SILO decision boundary.
ENGINE_MODES = ("simulate", "estimate", "auto")

#: Default on-disk cache location (the CLI's default; library use only
#: caches when $REPRO_CACHE_DIR is set -- see resolve_cache_dir).
DEFAULT_CACHE_DIR = os.path.join("~", ".cache", "silo-repro")


# ---------------------------------------------------------------------------
# request keying
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunRequest:
    """Canonical description of one simulation point.

    ``placements`` assigns workloads to cores: a single entry covering
    all (or a subset of) cores for homogeneous runs, several disjoint
    entries for colocation.  Cores outside every placement exist but
    are not driven (their params default to :class:`CoreParams`),
    matching the isolation study's idle cores.
    """

    config: HierarchyConfig
    placements: Tuple[Tuple[WorkloadSpec, Tuple[int, ...]], ...]
    plan: SamplingPlan
    seed: int
    colocated: bool = False
    track_sharing: bool = False
    chunk: int = DEFAULT_CHUNK
    #: Shadow-filter batch kernel (repro.sim.fastpath).  Results are
    #: bit-identical either way -- recorded for provenance, defaulted
    #: from the ambient setting by the constructors.
    fastpath: bool = True
    #: Optional fault plan (repro.faults); None means fault-free and
    #: keys differently from any active plan.
    faults: Optional[FaultPlan] = None
    #: How the point is resolved: "simulate" (trace-driven simulator)
    #: or "estimate" (repro.analytic.estimator).  Part of the key, so
    #: analytic approximations can never alias simulated results.
    mode: str = "simulate"

    @classmethod
    def point(cls, config, spec, plan, seed, core_ids=None,
              track_sharing=False, chunk=None, faults=None,
              fastpath=None, mode="simulate"):
        """A homogeneous point: ``spec`` on all cores (or ``core_ids``),
        exactly like :func:`repro.sim.driver.simulate`.  ``faults``
        defaults to the ambient plan installed by
        :func:`repro.faults.use_plan` (None when none is installed);
        ``chunk`` and ``fastpath`` default to the ambient settings
        (:func:`repro.sim.driver.use_chunk`,
        :func:`repro.sim.fastpath.use_fastpath`)."""
        if core_ids is None:
            core_ids = tuple(range(config.num_cores))
        if faults is None:
            faults = current_plan()
        if chunk is None:
            chunk = default_chunk()
        if fastpath is None:
            fastpath = default_enabled()
        return cls(config=config, placements=((spec, tuple(core_ids)),),
                   plan=plan, seed=seed, colocated=False,
                   track_sharing=track_sharing, chunk=chunk,
                   fastpath=fastpath, faults=faults, mode=mode)

    @classmethod
    def colocation(cls, config, assignments, plan, seed,
                   chunk=None, faults=None, fastpath=None,
                   mode="simulate"):
        """A heterogeneous point: ``assignments`` is a list of
        ``(spec, core_ids)`` pairs with disjoint core sets, exactly like
        :func:`repro.workloads.colocation.generate_colocation_traces`."""
        placements = tuple((spec, tuple(ids))
                           for spec, ids in assignments)
        if faults is None:
            faults = current_plan()
        if chunk is None:
            chunk = default_chunk()
        if fastpath is None:
            fastpath = default_enabled()
        return cls(config=config, placements=placements, plan=plan,
                   seed=seed, colocated=True, track_sharing=False,
                   chunk=chunk, fastpath=fastpath, faults=faults,
                   mode=mode)

    def canonical(self):
        """JSON-native dict that fully determines the simulation."""
        return {
            "config": asdict(self.config),
            "placements": [
                {"spec": asdict(spec), "core_ids": list(ids)}
                for spec, ids in self.placements],
            "plan": asdict(self.plan),
            "seed": self.seed,
            "colocated": self.colocated,
            "track_sharing": self.track_sharing,
            "chunk": self.chunk,
            "fastpath": self.fastpath,
            "faults": (None if self.faults is None
                       else self.faults.canonical()),
            "mode": self.mode,
        }

    @classmethod
    def from_canonical(cls, data):
        """Rebuild a request from its :meth:`canonical` dict.

        This is the wire format of the job server (``repro.serve``):
        a request travels as JSON, is reconstructed here, and must key
        identically to the original --
        ``RunRequest.from_canonical(r.canonical()).key(f) == r.key(f)``
        for every fingerprint ``f`` (the round-trip property the serve
        tests pin).  Validation is the dataclasses' own
        ``__post_init__`` checks; malformed payloads raise
        ``ValueError``/``TypeError``/``KeyError`` for the server to
        turn into a 400.
        """
        from repro.workloads.base import CodeSpec, RegionSpec

        def spec_from(d):
            return WorkloadSpec(
                name=d["name"],
                code=CodeSpec(**d["code"]),
                regions=tuple(RegionSpec(**r) for r in d["regions"]),
                core=CoreParams(**d["core"]),
                rw_shared_region=d.get("rw_shared_region", ""))

        faults = None
        if data.get("faults") is not None:
            fd = dict(data["faults"])
            fd["vault_events"] = tuple(
                tuple(ev) for ev in fd.get("vault_events", ()))
            faults = FaultPlan(**fd)
        return cls(
            config=HierarchyConfig(**data["config"]),
            placements=tuple(
                (spec_from(p["spec"]), tuple(p["core_ids"]))
                for p in data["placements"]),
            plan=SamplingPlan(**data["plan"]),
            seed=data["seed"],
            colocated=data.get("colocated", False),
            track_sharing=data.get("track_sharing", False),
            chunk=data.get("chunk", DEFAULT_CHUNK),
            fastpath=data.get("fastpath", True),
            faults=faults,
            mode=data.get("mode", "simulate"))

    def key(self, fingerprint=""):
        """Content-address of this point under a code fingerprint."""
        blob = json.dumps({"schema": ENGINE_SCHEMA, "code": fingerprint,
                           "request": self.canonical()},
                          sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def fingerprint_files():
    """Package-relative paths of every source file the code
    fingerprint covers: all ``.py`` files under the ``repro`` package,
    in deterministic order.  The walk picks up new subpackages
    automatically -- ``repro/faults`` must appear here so cached
    fault-free summaries miss cleanly when the fault model changes."""
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    out = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith(".py"):
                path = os.path.join(dirpath, name)
                out.append(os.path.relpath(path, root))
    return out


@functools.lru_cache(maxsize=1)
def code_fingerprint():
    """Digest of the simulator's own source: the git sha plus a sha256
    over every ``repro`` package file's contents (the
    :func:`fingerprint_files` set).  Hashing file contents (not just
    the sha) keeps dirty working trees from replaying stale cache
    entries."""
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    h = hashlib.sha256()
    h.update((_manifest.git_sha() or "no-git").encode("utf-8"))
    for rel in fingerprint_files():
        h.update(rel.encode("utf-8"))
        with open(os.path.join(root, rel), "rb") as f:
            h.update(hashlib.sha256(f.read()).digest())
    return h.hexdigest()


# ---------------------------------------------------------------------------
# run summaries
# ---------------------------------------------------------------------------


@dataclass
class CoreSummary:
    """One driven core's measurement window, detached from the live
    CoreModel.  The evaluation methods replicate CoreModel's arithmetic
    operation-for-operation so re-evaluated metrics are bit-identical
    to the live object's."""

    core_id: int
    instructions: int
    base_cpi: float
    mlp: float
    ifetch_stall_factor: float
    data_latency: List[float]
    data_count: List[int]
    ifetch_latency: List[float]
    ifetch_count: List[int]
    rw_shared_latency: float
    rw_shared_count: int
    #: Per service level: {"max_bucket", "buckets", "count", "total",
    #: "min", "max"} -- a Distribution's full state.
    latency_hist: List[dict] = field(default_factory=list)

    def stall_cycles(self, level_scale=None, rw_shared_extra_factor=0.0):
        data = 0.0
        ifetch = 0.0
        if level_scale is None:
            data = sum(self.data_latency)
            ifetch = sum(self.ifetch_latency)
        else:
            for lvl in range(NUM_LEVELS):
                data += self.data_latency[lvl] * level_scale[lvl]
                ifetch += self.ifetch_latency[lvl] * level_scale[lvl]
        data += self.rw_shared_latency * rw_shared_extra_factor
        return ifetch * self.ifetch_stall_factor + data / self.mlp

    def cycles(self, level_scale=None, rw_shared_extra_factor=0.0):
        return (self.instructions * self.base_cpi
                + self.stall_cycles(level_scale, rw_shared_extra_factor))

    def ipc(self, level_scale=None, rw_shared_extra_factor=0.0):
        cyc = self.cycles(level_scale, rw_shared_extra_factor)
        return self.instructions / cyc if cyc > 0 else 0.0


def _hist_state(dist):
    return {"max_bucket": dist.max_bucket,
            "buckets": list(dist.buckets),
            "count": dist.count, "total": dist.total,
            "min": dist.min, "max": dist.max}


def _hist_restore(state, name="latency", desc=""):
    dist = Distribution(name, desc=desc, max_bucket=state["max_bucket"])
    dist.buckets = list(state["buckets"])
    dist.count = state["count"]
    dist.total = state["total"]
    dist.min = state["min"]
    dist.max = state["max"]
    return dist


@dataclass
class RunSummary:
    """Everything an experiment can ask of a finished point, in plain
    picklable/JSON-able data (no live System attached).

    Mirrors :class:`~repro.sim.driver.RunResult`'s evaluation API;
    values are bit-identical to the live object's because the same
    sums feed the same arithmetic.
    """

    schema: str
    request_key: str
    config: dict                  # asdict(HierarchyConfig)
    seed: Optional[int]
    core_ids: List[int]
    warmup_events: int
    measure_events: int
    warmup_wall_s: float
    measure_wall_s: float
    cores: List[CoreSummary]
    #: System-level counters of the measurement window.
    counters: dict
    #: (reads, writes_nosharing, writes_rwsharing) when the request
    #: asked for sharing classification, else None.
    sharing: Optional[Tuple[int, int, int]]
    #: Default EnergyModel breakdown of the window (Table III units).
    energy: dict
    #: How the summary was produced: "simulate" here; the analytic
    #: backend's EstimateSummary subclass carries "estimate".
    mode: str = "simulate"

    # -- performance (RunResult mirror) --------------------------------

    def per_core_ipc(self, level_scale=None, rw_shared_extra_factor=0.0):
        return [c.ipc(level_scale, rw_shared_extra_factor)
                for c in self.cores]

    def performance(self, level_scale=None, rw_shared_extra_factor=0.0):
        return sum(self.per_core_ipc(level_scale,
                                     rw_shared_extra_factor))

    def performance_with_llc_scale(self, factor):
        scale = [1.0] * NUM_LEVELS
        scale[LEVEL_LLC_LOCAL] = factor
        scale[LEVEL_LLC_REMOTE] = factor
        return self.performance(level_scale=scale)

    def performance_with_rw_multiplier(self, multiplier):
        return self.performance(rw_shared_extra_factor=multiplier - 1.0)

    def ipc_of(self, core_ids):
        """Aggregate IPC of a subset of the driven cores (Table VI)."""
        by_id = {c.core_id: c for c in self.cores}
        return sum(by_id[c].ipc() for c in core_ids)

    # -- memory system statistics --------------------------------------

    def _sum_counts(self, attr):
        totals = [0] * NUM_LEVELS
        for c in self.cores:
            counts = getattr(c, attr)
            for lvl in range(NUM_LEVELS):
                totals[lvl] += counts[lvl]
        return totals

    def level_counts(self):
        d = self._sum_counts("data_count")
        i = self._sum_counts("ifetch_count")
        return [d[lvl] + i[lvl] for lvl in range(NUM_LEVELS)]

    def instructions(self):
        return sum(c.instructions for c in self.cores)

    def llc_breakdown(self):
        counts = self.level_counts()
        local = counts[LEVEL_LLC_LOCAL]
        remote = counts[LEVEL_LLC_REMOTE]
        miss = counts[LEVEL_DRAM_CACHE] + counts[LEVEL_MEMORY]
        return local, remote, miss

    def llc_mpki(self):
        instrs = self.instructions()
        if instrs == 0:
            return 0.0
        _, _, miss = self.llc_breakdown()
        return 1000.0 * miss / instrs

    def max_core_cycles(self):
        """Slowest driven core's cycle count (the measured window's
        wall clock in core cycles, Fig. 13)."""
        return max(c.cycles() for c in self.cores)

    def llc_power_w(self, seconds):
        """Average LLC power over ``seconds`` (static + dynamic)."""
        if seconds <= 0:
            raise ValueError("seconds must be positive")
        return (self.energy["llc_static_w"]
                + self.energy["llc_dynamic_nj"] * 1e-9 / seconds)

    # -- observability -------------------------------------------------

    def driven_events(self):
        return self.measure_events * len(self.core_ids)

    def events_per_sec(self):
        if self.measure_wall_s <= 0:
            return 0.0
        return self.driven_events() / self.measure_wall_s

    def latency_percentiles(self):
        out = {}
        for lvl, name in enumerate(LEVEL_NAMES):
            merged = Distribution("latency", desc=name)
            for c in self.cores:
                merged.merge(_hist_restore(c.latency_hist[lvl]))
            if merged.count:
                out[name] = merged.value()
        return out

    def manifest(self):
        """Provenance record comparable to ``RunResult.manifest()``
        (without live-System extras like the stats snapshot)."""
        data = {
            "schema": _manifest.MANIFEST_SCHEMA,
            "git_sha": _manifest.git_sha(),
            "config": dict(self.config),
            "scale": self.config.get("scale"),
            "seed": self.seed,
            "sampling": {"warmup_events": self.warmup_events,
                         "measure_events": self.measure_events},
            "wall_clock": {"warmup_s": self.warmup_wall_s,
                           "measure_s": self.measure_wall_s},
            "throughput": {"driven_events": self.driven_events(),
                           "events_per_sec": self.events_per_sec()},
            "performance": self.performance(),
            "latency_percentiles": self.latency_percentiles(),
            "engine": {"request_key": self.request_key,
                       "mode": self.mode},
        }
        if self.config.get("llc_kind") == LLC_PRIVATE_VAULT:
            data["protocol_provenance"] = _manifest.protocol_provenance()
        if "faults" in self.counters:
            data["faults"] = {"counters": dict(self.counters["faults"])}
        return data

    # -- serialization -------------------------------------------------

    def to_dict(self):
        """JSON-native dict (``from_dict`` round-trips it exactly)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data):
        data = dict(data)
        data["cores"] = [CoreSummary(**c) for c in data["cores"]]
        if data.get("sharing") is not None:
            data["sharing"] = tuple(data["sharing"])
        return cls(**data)


def summarize(result, request_key=""):
    """Build a :class:`RunSummary` from a live RunResult."""
    from repro.energy.model import EnergyModel

    sys_ = result.system
    cores = []
    for c in result.core_ids:
        core = sys_.cores[c]
        p = core.params
        cores.append(CoreSummary(
            core_id=c,
            instructions=core.instructions,
            base_cpi=p.base_cpi,
            mlp=p.mlp,
            ifetch_stall_factor=p.ifetch_stall_factor,
            data_latency=list(core.data_latency),
            data_count=list(core.data_count),
            ifetch_latency=list(core.ifetch_latency),
            ifetch_count=list(core.ifetch_count),
            rw_shared_latency=core.rw_shared_latency,
            rw_shared_count=core.rw_shared_count,
            latency_hist=[_hist_state(h) for h in core.latency_hist],
        ))
    counters = {
        "llc_accesses": sys_.llc_accesses,
        "dram_cache_accesses": sys_.dram_cache_accesses,
        "invalidations": sys_.invalidations,
        "l1_writebacks": sys_.l1_writebacks,
        "llc_writebacks": sys_.llc_writebacks,
        "vault_evictions": sys_.vault_evictions,
        "directory_lookups": sys_.directory_lookups,
        "remote_forwards": sys_.remote_forwards,
        "replica_hits": sys_.replica_hits,
        "prefetch_fills": sys_.prefetch_fills,
        "link_traversals": sys_.mesh.link_traversals,
        "memory_accesses": sys_.memory.accesses,
        "memory_reads": sys_.memory.reads,
        "memory_writes": sys_.memory.writes,
    }
    if sys_.faults is not None:
        # Present only for faulted runs: fault-free summaries keep
        # their pre-faults shape byte-for-byte.
        counters["faults"] = sys_.faults.counters_dict()
    sharing = sys_.sharing_breakdown() if sys_.track_sharing else None
    bd = EnergyModel().breakdown(sys_)
    energy = {
        "llc_dynamic_nj": bd.llc_dynamic_nj,
        "memory_dynamic_nj": bd.memory_dynamic_nj,
        "total_dynamic_nj": bd.total_dynamic_nj,
        "llc_static_w": bd.llc_static_w,
        "memory_static_w": bd.memory_static_w,
    }
    return RunSummary(
        schema=ENGINE_SCHEMA,
        request_key=request_key,
        config=asdict(sys_.config),
        seed=None,
        core_ids=list(result.core_ids),
        warmup_events=result.warmup_events,
        measure_events=result.measure_events,
        warmup_wall_s=result.warmup_wall_s,
        measure_wall_s=result.measure_wall_s,
        cores=cores,
        counters=counters,
        sharing=sharing,
        energy=energy,
    )


# ---------------------------------------------------------------------------
# point execution (also the process-pool worker)
# ---------------------------------------------------------------------------


def execute_request(request):
    """Simulate one point; returns the live RunResult.

    This is the single source of truth for how a RunRequest turns into
    a simulation -- the serial path, the pool workers and the
    determinism tests all go through it.
    """
    from repro.sim.system import System
    from repro.workloads.colocation import generate_colocation_traces
    from repro.workloads.generator import generate_traces

    config = request.config
    plan = request.plan
    core_params = [None] * config.num_cores
    for spec, core_ids in request.placements:
        for c in core_ids:
            core_params[c] = spec.core
    idle = CoreParams()
    core_params = [p if p is not None else idle for p in core_params]
    system = System(config, core_params)
    system.track_sharing = request.track_sharing
    system.use_fastpath = request.fastpath
    if request.faults is not None and request.faults.active():
        # Inactive plans (all-zero rates, no events) attach nothing,
        # so they are bit-identical to fault-free requests.
        from repro.faults.injector import FaultInjector
        system.attach_faults(
            FaultInjector(request.faults, config.num_cores))
    if request.colocated:
        traces, _layouts = generate_colocation_traces(
            [(spec, list(ids)) for spec, ids in request.placements],
            events_per_core=plan.total_events, scale=config.scale,
            seed=request.seed)
    else:
        ((spec, core_ids),) = request.placements
        traces, layout = generate_traces(
            spec, num_cores=len(core_ids),
            events_per_core=plan.total_events, scale=config.scale,
            seed=request.seed, core_ids=list(core_ids))
        system.rw_shared_range = layout.rw_shared_range
    return run_system(system, traces, plan.warmup_events,
                      plan.measure_events, request.chunk,
                      seed=request.seed)


def _execute_to_summary(request, request_key):
    if request.mode == "estimate":
        # Single dispatch seam: anything that executes a request
        # (serial path, pool worker, determinism tests) honours the
        # request's mode.
        from repro.analytic.estimator import estimate_to_summary
        return estimate_to_summary(request, request_key)
    summary = summarize(execute_request(request), request_key)
    summary.seed = request.seed
    return summary


def _pool_worker(payload):
    """Top-level (picklable) ProcessPoolExecutor entry point; returns
    ``(summary, meta)`` where ``meta`` carries the worker pid and its
    execution wall clock for the parent's flight recorder."""
    request, request_key = payload
    t0 = clock()
    summary = _execute_to_summary(request, request_key)
    return summary, {"pid": os.getpid(), "exec_s": clock() - t0}


def _stamp_done(done_at, key, _fut):
    """``add_done_callback`` hook: stamp a future's completion on the
    *parent's* clock (worker timestamps are not comparable across
    processes; the worker only reports its execution duration)."""
    done_at[key] = clock()


# ---------------------------------------------------------------------------
# on-disk cache
# ---------------------------------------------------------------------------


class RunCache:
    """Content-addressed pickle store of RunSummaries.

    Entries live at ``<dir>/<key[:2]>/<key>.pkl``; writes go through a
    temp file + ``os.replace`` so concurrent engines only ever see
    complete entries.  Unreadable or stale-schema entries read as
    misses (and are left for a future overwrite).

    ``max_bytes`` bounds the cache's on-disk footprint
    (``--cache-max-bytes`` / ``$REPRO_CACHE_MAX_BYTES``; None =
    unbounded): after every write the least-recently-used entries are
    evicted, oldest access first, until the total fits.  Access order
    is kept with an explicit ``os.utime`` touch on every hit, so LRU
    survives filesystems mounted ``noatime``.  Evictions are counted
    in :attr:`pruned_entries` (surfaced through the engine stats
    group)."""

    def __init__(self, directory, max_bytes=None):
        self.directory = os.path.abspath(os.path.expanduser(directory))
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None "
                             "for an unbounded cache)")
        self.max_bytes = max_bytes
        self.pruned_entries = 0

    def path_for(self, key):
        return os.path.join(self.directory, key[:2], key + ".pkl")

    def get(self, key):
        path = self.path_for(key)
        try:
            with open(path, "rb") as f:
                summary = pickle.load(f)
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError):
            return None
        if (not isinstance(summary, RunSummary)
                or summary.schema != ENGINE_SCHEMA):
            return None
        try:
            os.utime(path)          # refresh LRU order on hit
        except OSError:
            pass
        return summary

    def put(self, key, summary):
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + ".tmp.%d" % os.getpid()
        with open(tmp, "wb") as f:
            pickle.dump(summary, f, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        if self.max_bytes is not None:
            self.prune()
        return path

    def entries(self):
        """``(atime, size, path)`` for every cache entry, oldest
        access first (the eviction order)."""
        out = []
        try:
            shards = sorted(os.listdir(self.directory))
        except OSError:
            return out
        for shard in shards:
            shard_dir = os.path.join(self.directory, shard)
            try:
                names = sorted(os.listdir(shard_dir))
            except OSError:
                continue
            for name in names:
                if not name.endswith(".pkl"):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    st = os.stat(path)
                except OSError:
                    continue
                out.append((st.st_atime, st.st_size, path))
        out.sort()
        return out

    def total_bytes(self):
        return sum(size for _atime, size, _path in self.entries())

    def prune(self, max_bytes=None):
        """Evict least-recently-used entries until the cache fits in
        ``max_bytes`` (defaulting to the configured cap); returns the
        number of entries removed."""
        cap = max_bytes if max_bytes is not None else self.max_bytes
        if cap is None:
            return 0
        entries = self.entries()
        total = sum(size for _atime, size, _path in entries)
        removed = 0
        for _atime, size, path in entries:
            if total <= cap:
                break
            try:
                os.remove(path)
            except OSError:
                continue
            total -= size
            removed += 1
        self.pruned_entries += removed
        return removed


def resolve_cache_dir(default=None):
    """Cache directory policy: ``$REPRO_CACHE_DIR`` wins (empty string
    disables caching entirely), else ``default`` (the CLI passes
    ``DEFAULT_CACHE_DIR``; library use passes None -> no cache)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env is not None:
        return os.path.expanduser(env) if env else None
    return os.path.expanduser(default) if default else None


def cache_max_bytes_from_env():
    """Cache size cap from ``$REPRO_CACHE_MAX_BYTES`` (None =
    unbounded; suffixes k/m/g are 1024-based)."""
    raw = os.environ.get("REPRO_CACHE_MAX_BYTES", "").strip()
    if not raw:
        return None
    return parse_size_bytes(raw)


def parse_size_bytes(raw):
    """Parse a byte count like ``500m``/``2g``/``1048576``."""
    text = str(raw).strip().lower()
    mult = 1
    if text and text[-1] in "kmg":
        mult = 1024 ** ("kmg".index(text[-1]) + 1)
        text = text[:-1]
    try:
        value = int(text) * mult
    except ValueError:
        raise ValueError("invalid byte size %r (use an integer with "
                         "an optional k/m/g suffix)" % (raw,)) from None
    if value <= 0:
        raise ValueError("byte size must be positive, got %r" % (raw,))
    return value


def jobs_from_env():
    """Worker count from ``$REPRO_JOBS`` (default 1 = serial)."""
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if not raw:
        return 1
    try:
        jobs = int(raw)
    except ValueError:
        raise ValueError("REPRO_JOBS must be an integer, got %r"
                         % raw) from None
    return max(1, jobs)


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------


class RunEngine:
    """Executes batches of RunRequests with dedup, memoization and
    process fan-out; accumulates its own observability counters in a
    stats registry group (recorded into experiment manifests)."""

    def __init__(self, jobs=None, cache=None, mode="simulate",
                 transport=None):
        if mode not in ENGINE_MODES:
            raise ValueError("unknown engine mode %r (choose from %s)"
                             % (mode, ", ".join(ENGINE_MODES)))
        self.jobs = max(1, int(jobs)) if jobs is not None \
            else jobs_from_env()
        self.cache = cache
        self.mode = mode
        #: Pluggable executor transport (repro.serve.transport).  None
        #: means the classic behaviour: in-process when ``jobs<=1``, a
        #: per-batch local ProcessPoolExecutor otherwise.  With a
        #: transport installed every simulated point fans out through
        #: it (socket workers on other hosts, a job-file spool, ...).
        self.transport = transport
        self.fingerprint = code_fingerprint()
        self.requests = 0
        self.unique_points = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.executed = 0
        self.exec_wall_s = 0.0
        self.driven_events = 0
        self.estimated = 0
        self.estimate_wall_s = 0.0
        self.estimate_fallbacks = 0
        self.auto_boundary_simulations = 0
        #: Per-request span log + engine gauges (repro.obs.recorder).
        self.recorder = FlightRecorder()
        self.stats = self._build_stats()

    def _build_stats(self):
        g = Group("engine", "run engine throughput and memoization")
        g.bind(self, "jobs", desc="process-pool width (1 = serial)",
               resettable=False)
        g.bind(self, "requests", desc="points requested by experiments")
        g.bind(self, "unique_points",
               desc="distinct points after in-batch dedup")
        g.bind(self, "cache_hits", desc="points restored from RunCache")
        g.bind(self, "cache_misses",
               desc="cache lookups that missed (then simulated)")
        g.bind(self, "executed", desc="points actually simulated")
        g.bind(self, "exec_wall_s",
               desc="wall-clock seconds spent executing points")
        g.bind(self, "driven_events",
               desc="measured events driven across executed points")
        g.bind(self, "estimated",
               desc="points resolved analytically (estimate mode)")
        g.bind(self, "estimate_wall_s",
               desc="wall-clock seconds spent in the analytic backend")
        g.bind(self, "estimate_fallbacks",
               desc="estimate-incapable or untrusted points simulated")
        g.bind(self, "auto_boundary_simulations",
               desc="auto-mode points simulated near a decision "
                    "boundary")
        g.formula("events_per_sec", self.events_per_sec,
                  desc="engine-level simulation throughput")
        g.formula("cache_hit_ratio", self.cache_hit_ratio,
                  desc="fraction of cache lookups that hit")
        g.formula("in_flight", lambda: self.recorder.in_flight,
                  desc="requests dispatched in the open batch")
        g.formula("worker_utilization",
                  lambda: self.recorder.utilization(self.jobs),
                  desc="busy seconds over worker-count x batch wall")
        g.formula("cache_pruned_entries",
                  lambda: (self.cache.pruned_entries
                           if self.cache is not None else 0),
                  desc="run-cache entries evicted by the LRU size cap")
        return g

    def events_per_sec(self):
        if self.exec_wall_s <= 0:
            return 0.0
        return self.driven_events / self.exec_wall_s

    def cache_hit_ratio(self):
        """Warm-cache hit ratio across this engine's lifetime."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def snapshot(self):
        """The engine stats group as a plain dict (manifest-ready)."""
        snap = self.stats.snapshot()
        snap["mode"] = self.mode
        snap["cache_dir"] = (self.cache.directory
                             if self.cache is not None else None)
        snap["cache_max_bytes"] = (self.cache.max_bytes
                                   if self.cache is not None else None)
        snap["transport"] = (self.transport.describe()
                             if self.transport is not None else "local")
        snap["flight_recorder"] = self.recorder.summary(self.jobs)
        return snap

    @staticmethod
    def _note_span(session, span):
        """Stream one flight-recorder span through the session (the
        job-server progress seam); no-op when nothing is observing."""
        if session is not None:
            session.emit("engine_span", span)

    def _apply_mode_policy(self, requests):
        """Resolve the engine-level mode into per-request modes.

        ``estimate`` rewrites every estimator-capable request;
        ``auto`` asks the estimator's triage (envelope trust region +
        decision-boundary analysis) which points may be estimated.
        Requests the estimator cannot or should not handle keep their
        simulate mode and are counted as fallbacks."""
        from dataclasses import replace

        from repro.analytic import estimator as _estimator

        if self.mode == "estimate":
            decisions = [
                "estimate" if (req.mode == "estimate"
                               or _estimator.can_estimate(req))
                else "fallback"
                for req in requests]
        else:
            decisions = _estimator.triage(requests)
        out = []
        for req, decision in zip(requests, decisions):
            if decision == "estimate":
                out.append(req if req.mode == "estimate"
                           else replace(req, mode="estimate"))
            else:
                if decision == "boundary":
                    self.auto_boundary_simulations += 1
                else:
                    self.estimate_fallbacks += 1
                out.append(req)
        return out

    def run(self, requests):
        """Execute a batch; returns RunSummaries aligned with
        ``requests`` (duplicates share one simulation)."""
        requests = list(requests)
        for req in requests:
            if req.mode not in REQUEST_MODES:
                raise ValueError("unknown request mode %r" % (req.mode,))
        self.requests += len(requests)
        if self.mode != "simulate":
            requests = self._apply_mode_policy(requests)
        session = _obs_session.current_session()
        # Tracing, stats inspection, telemetry sampling and profiling
        # all need live Systems: force in-process execution and skip
        # cache reads so every point simulates.
        live_only = session is not None and session.needs_live()
        rec = self.recorder

        keys = [req.key(self.fingerprint) for req in requests]
        order = []
        by_key = {}
        for req, key in zip(requests, keys):
            if key not in by_key:
                by_key[key] = req
                order.append(key)
        self.unique_points += len(order)
        rec.start_batch(len(order))
        t_batch = clock()

        summaries = {}
        missing = []
        for key in order:
            cached = None
            if self.cache is not None and not live_only:
                t_s = clock()
                cached = self.cache.get(key)
                if cached is not None:
                    self.cache_hits += 1
                    self._note_span(session, rec.record(
                        key, "cache-replay", "local", 0.0,
                        clock() - t_s, t_s - rec.epoch))
                else:
                    self.cache_misses += 1
            if cached is not None:
                summaries[key] = cached
                if session is not None:
                    session.note_summary(cached)
            else:
                missing.append(key)

        est_missing = [k for k in missing
                       if by_key[k].mode == "estimate"]
        if est_missing:
            # Analytic points resolve in microseconds: always
            # in-process, with their own wall-clock accounting so the
            # simulation throughput stats stay comparable.
            from repro.analytic.estimator import estimate_to_summary
            t0 = clock()
            for k in est_missing:
                t_s = clock()
                summary = estimate_to_summary(by_key[k], k)
                summaries[k] = summary
                self.estimated += 1
                self.estimate_wall_s += clock() - t_s
                self._note_span(session, rec.record(
                    k, "estimate", "local", t_s - t0,
                    clock() - t_s, t_s - rec.epoch))
                if session is not None:
                    session.note_summary(summary)
                if self.cache is not None and not live_only:
                    self.cache.put(k, summary)

        sim_missing = [k for k in missing
                       if by_key[k].mode != "estimate"]
        if sim_missing:
            t0 = clock()
            # A live session always executes in-process (tracer/stats
            # need the System); otherwise an installed transport takes
            # every point, and the classic local rules apply without
            # one.
            in_process = live_only or (
                self.transport is None
                and (self.jobs <= 1 or len(sim_missing) <= 1))
            if in_process:
                # run_system records these into the session itself
                # (tracer attach, rich manifests) -- no double noting.
                executed = []
                for k in sim_missing:
                    t_s = clock()
                    summary = _execute_to_summary(by_key[k], k)
                    executed.append(summary)
                    self._note_span(session, rec.record(
                        k, "simulate", "local", t_s - t0,
                        clock() - t_s, t_s - rec.epoch))
            else:
                executed = self._run_pool([(by_key[k], k)
                                           for k in sim_missing],
                                          t0, session)
                if session is not None:
                    for summary in executed:
                        session.note_summary(summary)
            self.exec_wall_s += clock() - t0
            for key, summary in zip(sim_missing, executed):
                summaries[key] = summary
                self.executed += 1
                self.driven_events += summary.driven_events()
                if self.cache is not None and not live_only:
                    self.cache.put(key, summary)
        rec.end_batch(clock() - t_batch)
        return [summaries[key] for key in keys]

    def _run_pool(self, payloads, t_batch, session=None):
        """Fan a batch out through the executor transport.

        Without an installed transport a per-batch local process pool
        is built and torn down here (the pre-transport behaviour,
        byte-for-byte); an installed transport is long-lived and owned
        by whoever installed it (the job server, a test)."""
        transport = self.transport
        owned = transport is None
        if owned:
            from repro.serve.transport import LocalPoolTransport
            transport = LocalPoolTransport(
                jobs=min(self.jobs, len(payloads)))
        transport.start()
        done_at = {}
        try:
            futures = []
            for payload in payloads:
                fut = transport.submit(*payload)
                fut.add_done_callback(
                    functools.partial(_stamp_done, done_at, payload[1]))
                futures.append(fut)
            results = []
            for (_request, key), fut in zip(payloads, futures):
                summary, meta = fut.result()
                # Span start reconstructed parent-side: completion
                # stamp minus the worker-reported duration.
                ended = done_at.get(key, clock())
                started = ended - meta["exec_s"]
                self._note_span(session, self.recorder.record(
                    key, "simulate", meta["worker"],
                    max(started - t_batch, 0.0), meta["exec_s"],
                    started - self.recorder.epoch))
                results.append(summary)
            return results
        finally:
            if owned:
                transport.stop()


# ---------------------------------------------------------------------------
# ambient engine (how experiment functions find it)
# ---------------------------------------------------------------------------


_current = None


def current_engine():
    """The installed engine, or None when nothing is installed."""
    return _current


@contextmanager
def use_engine(engine):
    """Install ``engine`` as the ambient one for the block (the CLI
    wraps each experiment invocation in this)."""
    global _current
    prev = _current
    _current = engine
    try:
        yield engine
    finally:
        _current = prev


def engine_from_env():
    """Default engine for direct library calls: ``$REPRO_JOBS`` workers
    and a cache only if ``$REPRO_CACHE_DIR`` names one (capped by
    ``$REPRO_CACHE_MAX_BYTES``)."""
    directory = resolve_cache_dir(default=None)
    cache = (RunCache(directory, max_bytes=cache_max_bytes_from_env())
             if directory else None)
    return RunEngine(jobs=None, cache=cache)


def run_grid(requests):
    """Run a batch of points through the ambient engine (building an
    environment-default engine when none is installed)."""
    engine = _current if _current is not None else engine_from_env()
    return engine.run(requests)
