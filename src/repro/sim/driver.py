"""Run driver: feeds per-core traces through a System and collects a
:class:`RunResult`.

Cores are interleaved in fixed-size chunks (coherence interactions
between cores happen at chunk granularity, which is far finer than any
reuse distance that matters here).  Each core keeps an approximate
local clock -- base CPI plus its exposed stall cycles -- which also
timestamps memory-controller bank occupancy.
"""

import os
from contextlib import contextmanager, nullcontext
from dataclasses import asdict, dataclass, field
from typing import List, Optional

import numpy as np

from repro.cores.perf_model import (
    NUM_LEVELS, LEVEL_NAMES, LEVEL_LLC_LOCAL, LEVEL_LLC_REMOTE,
    LEVEL_DRAM_CACHE, LEVEL_MEMORY)
from repro.obs import manifest as _manifest
from repro.obs import session as _obs_session
from repro.obs.profile import clock
from repro.obs.stats import Distribution
from repro.sim.config import LLC_PRIVATE_VAULT
from repro.sim.fastpath import kernel_for
from repro.sim.system import System

DEFAULT_CHUNK = 200

_chunk_override = None


def default_chunk():
    """Ambient core-interleave chunk: the :func:`use_chunk` override
    when one is installed, else ``$REPRO_CHUNK``, else
    ``DEFAULT_CHUNK``."""
    if _chunk_override is not None:
        return _chunk_override
    raw = os.environ.get("REPRO_CHUNK", "").strip()
    if raw:
        try:
            chunk = int(raw)
        except ValueError:
            raise ValueError("REPRO_CHUNK must be an integer, got %r"
                             % raw) from None
        if chunk < 1:
            raise ValueError("REPRO_CHUNK must be >= 1, got %d" % chunk)
        return chunk
    return DEFAULT_CHUNK


@contextmanager
def use_chunk(chunk):
    """Install ``chunk`` as the ambient interleave grain for the block
    (the CLI wraps experiments in this for ``--chunk``)."""
    chunk = int(chunk)
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    global _chunk_override
    prev = _chunk_override
    _chunk_override = chunk
    try:
        yield
    finally:
        _chunk_override = prev


class EventLanes:
    """First-class pre-decoded event lanes of one trace: the write and
    ifetch flags split out, the stall-time multiplier
    (ifetch_stall_factor for ifetches, 1/mlp for data) resolved per
    event, the fast-path event-key lane (``block << 2 | flags``, see
    repro.sim.fastpath) and a running ifetch count for O(1) per-streak
    counter bumps.

    The decode is vectorized with numpy and done once per
    trace+params; warmup and measure phases -- and any later run over
    the same trace -- reuse it (memoized on the trace by
    :func:`_decoded_lanes`).  The hot loops index plain Python lists
    (``tolist()``), which CPython reads faster than numpy scalars.
    Values are bit-identical to the original per-event ``iff if fl & 2
    else inv_mlp`` decode: both multiplier operands are the same two
    Python floats either way.

    The numpy block and multiplier arrays are kept alongside the list
    lanes so tier-2 timing lanes (:meth:`tier2_lanes`) can be derived
    vectorized on demand.
    """

    __slots__ = ("blocks", "writes", "ifetches", "lat_mul", "keys",
                 "if_prefix", "blocks_arr", "lat_mul_arr", "_tier2")

    def __init__(self, trace, params):
        flags = np.asarray(trace.flags, dtype=np.int64)
        blocks_arr = np.asarray(trace.blocks, dtype=np.int64)
        inv_mlp = 1.0 / params.mlp
        iff = params.ifetch_stall_factor
        ifetch_bits = flags & 2
        if_prefix = np.zeros(len(flags) + 1, dtype=np.int64)
        np.cumsum(ifetch_bits, out=if_prefix[1:])
        lat_mul_arr = np.where(ifetch_bits != 0, iff, inv_mlp)
        self.blocks = trace.blocks
        self.writes = (flags & 1).tolist()
        self.ifetches = ifetch_bits.tolist()
        self.lat_mul = lat_mul_arr.tolist()
        self.keys = ((blocks_arr << 2) | (flags & 3)).tolist()
        self.if_prefix = if_prefix.tolist()
        self.blocks_arr = blocks_arr
        self.lat_mul_arr = lat_mul_arr
        self._tier2 = {}

    def tier2_lanes(self, token, lat_lut, hop_lut, num_banks,
                    const_lat):
        """Per-event tier-2 timing lanes (lat, stall, hops), built
        vectorized and memoized under ``token`` (which encodes the
        tier-2 latency geometry, so distinct systems sharing a trace
        never mix lanes).

        Vault tier (constant local-hit latency): only the stall lane
        exists -- ``const_lat * lat_mul`` per event, computed in
        float64, the *identical* IEEE multiply the reference loop's
        ``lat * lat_mul[i]`` performs.

        NUCA tier: the home bank is ``block % num_banks``; the lat and
        hop lanes gather per-core bank LUTs (mesh round trip + bank
        access, and the hop count the reference's ``mesh.round_trip``
        adds to ``link_traversals``)."""
        got = self._tier2.get(token)
        if got is None:
            if lat_lut is None:
                got = (None,
                       (const_lat * self.lat_mul_arr).tolist(),
                       None)
            else:
                banks = self.blocks_arr % num_banks
                lat = lat_lut[banks]
                got = (lat.tolist(),
                       (lat * self.lat_mul_arr).tolist(),
                       hop_lut[banks].tolist())
            self._tier2[token] = got
        return got


def _decoded_lanes(trace, params):
    """The trace's :class:`EventLanes`, memoized on the trace object
    (keyed by the CoreParams that shaped them)."""
    cached = getattr(trace, "cached_lanes", None)
    if cached is not None and cached[0] == params:
        return cached[1]
    lanes = EventLanes(trace, params)
    trace.cached_lanes = (params, lanes)
    return lanes


def _per_core_state(system, traces):
    """Per-core hot-loop state: core id, the cycles retired per event
    and the decoded :class:`EventLanes`, so ``_drive`` does no
    per-event flag tests or attribute lookups."""
    out = []
    for tr in traces:
        p = system.cores[tr.core_id].params
        out.append((tr.core_id, tr.instr_per_event * p.base_cpi,
                    _decoded_lanes(tr, p)))
    return out


# silolint: hotpath
def _drive(system, per_core, starts, ends, times, chunk, sampler=None):
    """Interleave cores in ``chunk``-sized slices from per-core start to
    per-core end positions (positions may differ when prewarm prefixes
    have different lengths).

    When the system qualifies (repro.sim.fastpath), runs of
    guaranteed-trivial L1 hits and local vault/NUCA-bank hits are
    retired by the tiered shadow-filter kernel and only the remaining
    events call ``System.access``; results are bit-identical either
    way.  ``system.measuring`` is hoisted per drive: it only changes
    between phases (prefetcher configs flip it mid-access, but those
    disqualify the kernel).

    ``sampler`` is an optional
    :class:`repro.obs.telemetry.TelemetrySampler` ticked once per
    interleave *round* (not per event) with the cumulative driven
    count; disabled telemetry costs one ``is not None`` test per round.
    """
    access = system.access
    kernel = kernel_for(system)
    retire = None if kernel is None else kernel.retire_chunk
    measuring = system.measuring
    positions = list(starts)
    remaining = sum(e - s for s, e in zip(starts, ends))
    total = remaining
    while remaining > 0:
        for idx, (core, cpi_ev, lanes) in enumerate(per_core):
            pos = positions[idx]
            hi = min(pos + chunk, ends[idx])
            if pos >= hi:
                continue
            if retire is None:
                blocks = lanes.blocks
                writes = lanes.writes
                ifetches = lanes.ifetches
                lat_mul = lanes.lat_mul
                t = times[core]
                for i in range(pos, hi):
                    lat = access(core, blocks[i], writes[i], ifetches[i],
                                 t)
                    t += cpi_ev
                    if lat:
                        t += lat * lat_mul[i]
                times[core] = t
            else:
                times[core] = retire(core, lanes, cpi_ev, pos, hi,
                                     times[core], access, measuring)
                if kernel.bailed:
                    retire = None
            remaining -= hi - pos
            positions[idx] = hi
        if sampler is not None:
            sampler.tick(total - remaining)


@dataclass
class RunResult:
    """Everything measured in one simulation run.

    ``performance`` is the paper's metric: aggregate application
    instructions per cycle (the sum of per-core IPCs).  The re-scaling
    helpers re-evaluate performance under modified latencies without
    re-simulating (used by Fig. 2 and Fig. 4).
    """

    system: System
    measure_events: int
    core_ids: List[int] = field(default_factory=list)
    # Self-profiling throughput meter: wall-clock seconds spent driving
    # each phase (simulator time, not simulated time).
    warmup_wall_s: float = 0.0
    measure_wall_s: float = 0.0
    warmup_events: int = 0
    #: TelemetrySampler covering the measure phase, when the session
    #: asked for windowed telemetry (None otherwise).
    telemetry: Optional[object] = None

    # -- performance -------------------------------------------------------

    def per_core_ipc(self, level_scale=None, rw_shared_extra_factor=0.0):
        """IPC of each driven core, optionally under re-scaled
        latencies (see CoreModel.stall_cycles)."""
        return [self.system.cores[c].ipc(level_scale,
                                         rw_shared_extra_factor)
                for c in self.core_ids]

    def performance(self, level_scale=None, rw_shared_extra_factor=0.0):
        """Aggregate application instructions per cycle: the sum of
        per-core IPCs (the paper's throughput metric, Sec. VI-C)."""
        return sum(self.per_core_ipc(level_scale, rw_shared_extra_factor))

    def performance_with_llc_scale(self, factor):
        """Performance with every LLC access (local and remote) taking
        ``factor`` times its measured latency (Fig. 2 sweeps)."""
        scale = [1.0] * NUM_LEVELS
        scale[LEVEL_LLC_LOCAL] = factor
        scale[LEVEL_LLC_REMOTE] = factor
        return self.performance(level_scale=scale)

    def performance_with_rw_multiplier(self, multiplier):
        """Performance with RW-shared block accesses taking
        ``multiplier`` times their latency (Fig. 4)."""
        return self.performance(rw_shared_extra_factor=multiplier - 1.0)

    # -- memory system statistics ------------------------------------------

    def _sum_counts(self, attr):
        totals = [0] * NUM_LEVELS
        for c in self.core_ids:
            counts = getattr(self.system.cores[c], attr)
            for lvl in range(NUM_LEVELS):
                totals[lvl] += counts[lvl]
        return totals

    def level_counts(self):
        """Accesses satisfied at each level (ifetch + data)."""
        d = self._sum_counts("data_count")
        i = self._sum_counts("ifetch_count")
        return [d[lvl] + i[lvl] for lvl in range(NUM_LEVELS)]

    def instructions(self):
        """Instructions retired across the driven cores."""
        return sum(self.system.cores[c].instructions for c in self.core_ids)

    def llc_breakdown(self):
        """Fig. 11: (local hits, remote hits, off-chip misses) among
        accesses that reached the LLC level."""
        counts = self.level_counts()
        local = counts[LEVEL_LLC_LOCAL]
        remote = counts[LEVEL_LLC_REMOTE]
        miss = counts[LEVEL_DRAM_CACHE] + counts[LEVEL_MEMORY]
        return local, remote, miss

    def llc_mpki(self):
        """Off-chip misses per kilo-instruction."""
        instrs = self.instructions()
        if instrs == 0:
            return 0.0
        _, _, miss = self.llc_breakdown()
        return 1000.0 * miss / instrs

    # -- observability -----------------------------------------------------

    def driven_events(self):
        """References driven through the system during measurement."""
        return self.measure_events * len(self.core_ids)

    def events_per_sec(self):
        """Simulator throughput during the measurement phase."""
        if self.measure_wall_s <= 0:
            return 0.0
        return self.driven_events() / self.measure_wall_s

    def latency_percentiles(self):
        """Per-level exposed-latency percentiles over the driven cores
        (merged histograms; levels with no samples are omitted)."""
        out = {}
        for lvl, name in enumerate(LEVEL_NAMES):
            merged = Distribution("latency", desc=name)
            for c in self.core_ids:
                merged.merge(self.system.cores[c].latency_hist[lvl])
            if merged.count:
                out[name] = merged.value()
        return out

    def stats_snapshot(self):
        """The system's full stats registry as nested dicts."""
        return self.system.stats.snapshot()

    def manifest(self, seed=None, include_stats=False):
        """Run-provenance record: config, inputs, wall clock,
        throughput and latency percentiles (see repro.obs.manifest)."""
        sys_ = self.system
        data = {
            "schema": _manifest.MANIFEST_SCHEMA,
            "git_sha": _manifest.git_sha(),
            "config": asdict(sys_.config),
            "scale": sys_.config.scale,
            "seed": seed,
            "sampling": {"warmup_events": self.warmup_events,
                         "measure_events": self.measure_events},
            "wall_clock": {"warmup_s": self.warmup_wall_s,
                           "measure_s": self.measure_wall_s},
            "throughput": {"driven_events": self.driven_events(),
                           "events_per_sec": self.events_per_sec()},
            "performance": self.performance(),
            "latency_percentiles": self.latency_percentiles(),
        }
        if sys_.config.llc_kind == LLC_PRIVATE_VAULT:
            data["protocol_provenance"] = _manifest.protocol_provenance()
        if sys_.shadow_filter is not None:
            data["fastpath"] = sys_.shadow_filter.summary()
        if sys_.tracer is not None:
            data["trace"] = sys_.tracer.summary()
        if sys_.faults is not None:
            data["faults"] = sys_.faults.describe()
        if self.telemetry is not None:
            data["telemetry"] = self.telemetry.summary()
        if include_stats:
            data["stats"] = self.stats_snapshot()
        return data


def run_system(system, traces, warmup_events, measure_events,
               chunk=None, seed=None):
    """Warm up (prewarm prefix + ``warmup_events``), reset statistics,
    measure ``measure_events`` per core; returns a RunResult.

    ``chunk`` is the core-interleave grain; None resolves the ambient
    default (:func:`default_chunk`).  Both phases are wall-clock timed
    (the simulator's self-profiling throughput meter).  If an
    observation session is open (CLI ``--stats/--trace/--manifest``),
    a tracer is attached before driving and a provenance record is
    deposited after.
    """
    if chunk is None:
        chunk = default_chunk()
    warm_ends = []
    for tr in traces:
        end = tr.prewarm_events + warmup_events
        if len(tr) < end + measure_events:
            raise ValueError("trace for core %d has %d events, need %d"
                             % (tr.core_id, len(tr),
                                end + measure_events))
        warm_ends.append(end)
    session = _obs_session.current_session()
    profiler = session.profiler if session is not None else None
    telemetry_every = (session.telemetry_every if session is not None
                       else 0)
    if session is not None:
        session.attach(system)
    if profiler is not None:
        from repro.obs.profile import instrument
        instrument(profiler, system)
    sampler = None
    if telemetry_every > 0:
        # built here (the registry walk is the expensive part) and
        # re-armed after the warmup-boundary reset, so the timed
        # measure window only pays the per-window sampling cost
        from repro.obs.telemetry import TelemetrySampler
        sampler = TelemetrySampler(system, telemetry_every)
    times = [0.0] * system.num_cores
    per_core = _per_core_state(system, traces)
    system.measuring = False
    kernel = kernel_for(system)
    if kernel is not None:
        # The prewarm prefix touches each block once by design -- a
        # retired fraction measured over it says nothing about the
        # workload proper, so it must not count toward the kernel's
        # bail-out probation.  (The drive structure itself is shared
        # with the kernel-off path: interleave boundaries are part of
        # the reference results.)
        kernel.set_probation_floor(
            {tr.core_id: tr.prewarm_events for tr in traces})
    t0 = clock()
    with (profiler.region("warmup") if profiler is not None
          else nullcontext()):
        _drive(system, per_core, [0] * len(traces), warm_ends, times,
               chunk)
    t1 = clock()
    system.reset_stats()
    system.measuring = True
    if sampler is not None:
        sampler.start()
    with (profiler.region("measure") if profiler is not None
          else nullcontext()):
        _drive(system, per_core, warm_ends,
               [e + measure_events for e in warm_ends], times, chunk,
               sampler)
    t2 = clock()
    if sampler is not None:
        sampler.finish(measure_events * len(traces))
    for tr in traces:
        system.cores[tr.core_id].retire(
            int(measure_events * tr.instr_per_event))
    result = RunResult(system=system, measure_events=measure_events,
                       core_ids=[tr.core_id for tr in traces],
                       warmup_wall_s=t1 - t0, measure_wall_s=t2 - t1,
                       warmup_events=warmup_events, telemetry=sampler)
    if profiler is not None:
        profiler.add_events(result.driven_events())
        if system.shadow_filter is not None:
            profiler.note_fastpath(system.shadow_filter.summary())
    if session is not None:
        session.note_run(result, seed=seed)
    return result


def simulate(config, spec, plan, core_params=None, seed=0,
             track_sharing=False, chunk=None, faults=None,
             fastpath=None):
    """Convenience wrapper: build the system, generate traces for a
    homogeneous workload, run, and return the RunResult.  ``faults``
    is an optional :class:`repro.faults.FaultPlan`; inactive plans
    attach nothing (bit-identical to fault-free).  ``fastpath``
    forces the shadow-filter kernel on/off (None keeps the ambient
    default); results are identical either way."""
    from repro.workloads.generator import generate_traces

    session = _obs_session.current_session()
    profiler = session.profiler if session is not None else None
    with (profiler.region("setup") if profiler is not None
          else nullcontext()):
        n = config.num_cores
        if core_params is None:
            core_params = [spec.core] * n
        system = System(config, core_params)
        system.track_sharing = track_sharing
        if fastpath is not None:
            system.use_fastpath = fastpath
        if faults is not None and faults.active():
            from repro.faults.injector import FaultInjector
            system.attach_faults(FaultInjector(faults, n))
        traces, layout = generate_traces(
            spec, num_cores=n, events_per_core=plan.total_events,
            scale=config.scale, seed=seed)
        system.rw_shared_range = layout.rw_shared_range
    return run_system(system, traces, plan.warmup_events,
                      plan.measure_events, chunk, seed=seed)
