"""System configuration for the trace-driven simulator.

A :class:`HierarchyConfig` fully describes one evaluated system's
memory hierarchy (Table II).  Capacities are *full-scale*; the system
builder divides them by ``scale`` -- the same divisor the workload
generator applies to footprints -- preserving every capacity ratio of
the real machine.
"""

from dataclasses import dataclass
from typing import Optional

from repro import params as P

LLC_SHARED = "shared"
LLC_PRIVATE_VAULT = "private_vault"

#: Smallest cache we allow after scaling, to keep set behaviour sane
#: (64 blocks = 8 sets at 8 ways; below this a scaled L1 degenerates).
MIN_CACHE_BLOCKS = 64


@dataclass(frozen=True)
class HierarchyConfig:
    """Complete description of one simulated system."""

    name: str = "baseline"
    num_cores: int = P.NUM_CORES
    scale: int = 64

    # Private on-chip SRAM caches
    l1_size_bytes: int = P.L1_SIZE_BYTES
    l1_ways: int = P.L1_WAYS
    l1_latency: int = P.L1_LATENCY
    l2_size_bytes: Optional[int] = None       # 3-level studies only
    l2_ways: int = P.L2_WAYS
    l2_latency: int = P.L2_LATENCY

    # LLC organization
    llc_kind: str = LLC_SHARED
    llc_size_bytes: int = P.BASELINE_LLC_SIZE_BYTES  # total (shared) or
    #                                                  per-core (vault)
    llc_ways: int = P.BASELINE_LLC_WAYS              # shared only
    llc_latency: int = P.BASELINE_LLC_BANK_LATENCY   # bank / vault access

    # Conventional DRAM cache behind a shared LLC
    dram_cache_bytes: Optional[int] = None
    dram_cache_latency: int = P.TRAD_DRAM_CACHE_LATENCY

    # Main memory
    memory_latency: int = P.MEMORY_LATENCY
    memory_queueing: bool = True

    # Mesh
    hop_latency: int = P.MESH_HOP_LATENCY

    # SILO performance optimizations (Sec. V-C).  Each accepts:
    # False (off), True / "ideal" (the paper's Fig. 12 limit study:
    # zero-cost, always-correct), or a realistic implementation:
    # "missmap" (per-segment presence bit-vectors in SRAM, [24]) for the
    # miss predictor and "sram" (LRU cache of directory sets at the home
    # node, [25]) for the directory cache.
    local_miss_predictor: object = False
    directory_cache: object = False

    # Coherence protocol for the private organization: "moesi" (the
    # paper's choice, Sec. V-B) or "mesi" (ablation: a dirty block must
    # be written back to memory before a reader can be served).
    protocol: str = "moesi"

    # Optional L1-D stride prefetcher (Table II lists one; the workload
    # models describe post-prefetch residual misses, so it defaults off
    # -- see DESIGN.md).
    l1_prefetcher: bool = False

    # Victim Replication (Zhang & Asanovic [43], discussed in Sec.
    # VIII): clean L1 victims are replicated into the requester's local
    # LLC bank so later reads avoid the mesh.  A D-NUCA-style
    # comparison point for shared organizations.
    victim_replication: bool = False

    def __post_init__(self):
        if self.llc_kind not in (LLC_SHARED, LLC_PRIVATE_VAULT):
            raise ValueError("unknown llc_kind %r" % (self.llc_kind,))
        if self.protocol not in ("moesi", "mesi"):
            raise ValueError("unknown protocol %r" % (self.protocol,))
        if self.num_cores < 1:
            raise ValueError("need at least one core")
        if self.scale < 1:
            raise ValueError("scale must be >= 1")
        if self.local_miss_predictor not in (False, True, "ideal",
                                             "missmap"):
            raise ValueError("local_miss_predictor must be False, True/"
                             "'ideal' or 'missmap'")
        if self.directory_cache not in (False, True, "ideal", "sram"):
            raise ValueError("directory_cache must be False, True/"
                             "'ideal' or 'sram'")
        if self.llc_kind == LLC_SHARED and (self.local_miss_predictor
                                            or self.directory_cache):
            raise ValueError("miss predictor / directory cache are SILO "
                             "(private vault) optimizations")
        if self.victim_replication and self.llc_kind != LLC_SHARED:
            raise ValueError("victim replication applies to shared "
                             "NUCA organizations only")

    def scaled(self, size_bytes):
        """Scale a capacity down, flooring at MIN_CACHE_BLOCKS blocks."""
        scaled = size_bytes // self.scale
        return max(MIN_CACHE_BLOCKS * P.BLOCK_BYTES, scaled)
