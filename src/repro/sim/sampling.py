"""SMARTS-style sampling plans (Sec. VI-C).

The paper warms architectural state, runs to steady state, then
measures a window.  Our trace-driven analogue: drive ``warmup_events``
references per core with statistics off (caches and coherence state
warm up), then measure ``measure_events`` per core.

The default plan is chosen so that the largest scaled structures (a
256 MB/64 = 4 MB direct-mapped vault per core and the scanned secondary
working sets) reach steady state.  ``from_env`` lets test/bench runs
pick lighter or heavier plans via ``REPRO_SAMPLING``.
"""

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class SamplingPlan:
    """Events per core for the warmup and measurement windows."""

    warmup_events: int = 60_000
    measure_events: int = 20_000

    def __post_init__(self):
        if self.warmup_events < 0 or self.measure_events <= 0:
            raise ValueError("invalid sampling plan")

    @property
    def total_events(self):
        return self.warmup_events + self.measure_events


#: Named presets: quick for unit tests, standard for benchmarks, full
#: for high-fidelity runs.
PRESETS = {
    "quick": SamplingPlan(25_000, 12_000),
    "standard": SamplingPlan(60_000, 20_000),
    "full": SamplingPlan(150_000, 50_000),
}


def parse_plan(spec):
    """Resolve ``spec`` to a SamplingPlan: either a preset name or a
    custom ``warmup:measure`` event pair (e.g. ``40000:15000``)."""
    if ":" in spec:
        warmup_s, _, measure_s = spec.partition(":")
        try:
            return SamplingPlan(int(warmup_s), int(measure_s))
        except ValueError:
            raise ValueError(
                "invalid sampling spec %r; a custom plan is "
                "'warmup:measure' with warmup >= 0 and measure > 0, "
                "e.g. '40000:15000'" % (spec,)) from None
    try:
        return PRESETS[spec]
    except KeyError:
        raise ValueError(
            "unknown sampling plan %r; choose a preset from %s or give "
            "a custom 'warmup:measure' pair, e.g. '40000:15000'"
            % (spec, sorted(PRESETS))) from None


def from_env(default="standard"):
    """Select a sampling plan from $REPRO_SAMPLING (falling back to
    ``default``): a preset name or a ``warmup:measure`` pair."""
    return parse_plan(os.environ.get("REPRO_SAMPLING", default))
