"""SMARTS-style sampling plans (Sec. VI-C).

The paper warms architectural state, runs to steady state, then
measures a window.  Our trace-driven analogue: drive ``warmup_events``
references per core with statistics off (caches and coherence state
warm up), then measure ``measure_events`` per core.

The default plan is chosen so that the largest scaled structures (a
256 MB/64 = 4 MB direct-mapped vault per core and the scanned secondary
working sets) reach steady state.  ``from_env`` lets test/bench runs
pick lighter or heavier plans via ``REPRO_SAMPLING``.
"""

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class SamplingPlan:
    """Events per core for the warmup and measurement windows."""

    warmup_events: int = 60_000
    measure_events: int = 20_000

    def __post_init__(self):
        if self.warmup_events < 0 or self.measure_events <= 0:
            raise ValueError("invalid sampling plan")

    @property
    def total_events(self):
        return self.warmup_events + self.measure_events


#: Named presets: quick for unit tests, standard for benchmarks, full
#: for high-fidelity runs.
PRESETS = {
    "quick": SamplingPlan(25_000, 12_000),
    "standard": SamplingPlan(60_000, 20_000),
    "full": SamplingPlan(150_000, 50_000),
}


def from_env(default="standard"):
    """Select a sampling plan from $REPRO_SAMPLING (falling back to
    ``default``)."""
    name = os.environ.get("REPRO_SAMPLING", default)
    try:
        return PRESETS[name]
    except KeyError:
        raise ValueError("REPRO_SAMPLING=%r; choose from %s"
                         % (name, sorted(PRESETS)))
