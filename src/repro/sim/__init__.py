"""Trace-driven CMP simulation: system assembly, the access pipeline
(L1 -> [L2] -> LLC -> directory -> memory) with full MESI/MOESI
coherence, the run driver with SMARTS-style warmup/measure sampling,
and statistics."""

from repro.sim.config import HierarchyConfig
from repro.sim.system import System
from repro.sim.driver import RunResult, run_system, simulate
from repro.sim.sampling import SamplingPlan, parse_plan

__all__ = ["HierarchyConfig", "System", "RunResult", "run_system",
           "simulate", "SamplingPlan", "parse_plan"]
