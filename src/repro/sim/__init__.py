"""Trace-driven CMP simulation: system assembly, the access pipeline
(L1 -> [L2] -> LLC -> directory -> memory) with full MESI/MOESI
coherence, the run driver with SMARTS-style warmup/measure sampling,
the parallel/memoized run engine, and statistics."""

from repro.sim.config import HierarchyConfig
from repro.sim.system import System
from repro.sim.driver import RunResult, run_system, simulate
from repro.sim.engine import (RunCache, RunEngine, RunRequest,
                              RunSummary, current_engine, run_grid,
                              use_engine)
from repro.sim.sampling import SamplingPlan, parse_plan

__all__ = ["HierarchyConfig", "System", "RunResult", "run_system",
           "simulate", "RunCache", "RunEngine", "RunRequest",
           "RunSummary", "current_engine", "run_grid", "use_engine",
           "SamplingPlan", "parse_plan"]
