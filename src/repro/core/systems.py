"""Builders for every evaluated system configuration (Sec. VI-A).

Each function returns a :class:`repro.sim.config.HierarchyConfig`; pass
it with per-core :class:`CoreParams` to :class:`repro.sim.System`, or
use :func:`repro.sim.driver.simulate`.
"""

from repro import params as P
from repro.sim.config import HierarchyConfig, LLC_SHARED, LLC_PRIVATE_VAULT


def baseline_config(num_cores=P.NUM_CORES, scale=64, **overrides):
    """Scale-out Processors style baseline: 8 MB shared NUCA LLC, 5-cycle
    banks, two-level hierarchy, non-inclusive MESI."""
    kw = dict(
        name="baseline",
        num_cores=num_cores,
        scale=scale,
        llc_kind=LLC_SHARED,
        llc_size_bytes=P.BASELINE_LLC_SIZE_BYTES,
        llc_ways=P.BASELINE_LLC_WAYS,
        llc_latency=P.BASELINE_LLC_BANK_LATENCY,
    )
    kw.update(overrides)
    return HierarchyConfig(**kw)


def baseline_dram_cache_config(num_cores=P.NUM_CORES, scale=64,
                               **overrides):
    """Baseline plus an 8 GB conventional page-based DRAM cache at 40 ns
    (20% faster than memory), perfect miss prediction, infinite
    bandwidth."""
    kw = dict(
        name="baseline_dram",
        dram_cache_bytes=P.TRAD_DRAM_CACHE_SIZE_BYTES,
        dram_cache_latency=P.TRAD_DRAM_CACHE_LATENCY,
    )
    kw.update(overrides)
    return baseline_config(num_cores, scale, **kw)


def silo_config(num_cores=P.NUM_CORES, scale=64, local_miss_predictor=False,
                directory_cache=False, **overrides):
    """SILO: per-core private 256 MB latency-optimized vaults (23-cycle
    total access), inclusive MOESI with in-DRAM duplicate-tag
    directory."""
    kw = dict(
        name="silo",
        num_cores=num_cores,
        scale=scale,
        llc_kind=LLC_PRIVATE_VAULT,
        llc_size_bytes=P.SILO_VAULT_SIZE_BYTES,
        llc_latency=P.SILO_VAULT_TOTAL_LATENCY,
        local_miss_predictor=local_miss_predictor,
        directory_cache=directory_cache,
    )
    kw.update(overrides)
    return HierarchyConfig(**kw)


def silo_co_config(num_cores=P.NUM_CORES, scale=64, **overrides):
    """SILO with capacity-optimized 512 MB vaults (32-cycle access)."""
    kw = dict(
        name="silo_co",
        llc_size_bytes=P.SILO_CO_VAULT_SIZE_BYTES,
        llc_latency=P.SILO_CO_VAULT_TOTAL_LATENCY,
    )
    kw.update(overrides)
    return silo_config(num_cores, scale, **kw)


def vaults_sh_config(num_cores=P.NUM_CORES, scale=64, **overrides):
    """Vaults-Sh: latency-optimized vaults stacked over the cores but
    shared by all in a NUCA address-interleaved manner (aggregate 4 GB);
    average hit round trip 41 cycles.  Like the vaults it is built from,
    the organization is direct-mapped (TAD blocks)."""
    kw = dict(
        name="vaults_sh",
        num_cores=num_cores,
        scale=scale,
        llc_kind=LLC_SHARED,
        llc_size_bytes=P.SILO_VAULT_SIZE_BYTES * num_cores,
        llc_ways=1,
        llc_latency=P.SILO_VAULT_TOTAL_LATENCY,
    )
    kw.update(overrides)
    return HierarchyConfig(**kw)


def baseline_vr_config(num_cores=P.NUM_CORES, scale=64, **overrides):
    """Related-work comparison (Sec. VIII): the baseline shared NUCA
    LLC with Victim Replication [43] -- clean L1 victims replicated in
    the requester's local bank.  D-NUCA-style locality without private
    capacity."""
    kw = dict(
        name="baseline_vr",
        victim_replication=True,
    )
    kw.update(overrides)
    return baseline_config(num_cores, scale, **kw)


def three_level_sram_config(num_cores=P.NUM_CORES, scale=64, **overrides):
    """Intel-like 3-level design: private 512 KB L2s + 32 MB SRAM NUCA
    LLC with 7-cycle banks."""
    kw = dict(
        name="3level_sram",
        num_cores=num_cores,
        scale=scale,
        l2_size_bytes=P.L2_SIZE_BYTES,
        llc_kind=LLC_SHARED,
        llc_size_bytes=P.THREE_LEVEL_SRAM_LLC_BYTES,
        llc_ways=P.BASELINE_LLC_WAYS,
        llc_latency=P.THREE_LEVEL_LLC_BANK_LATENCY,
    )
    kw.update(overrides)
    return HierarchyConfig(**kw)


def three_level_edram_config(num_cores=P.NUM_CORES, scale=64, **overrides):
    """POWER9-like 3-level design: 128 MB eDRAM NUCA LLC, optimistically
    at the same 7-cycle bank latency as the SRAM design."""
    kw = dict(
        name="3level_edram",
        llc_size_bytes=P.THREE_LEVEL_EDRAM_LLC_BYTES,
    )
    kw.update(overrides)
    return three_level_sram_config(num_cores, scale, **kw)


def three_level_silo_config(num_cores=P.NUM_CORES, scale=64, **overrides):
    """SILO with private 512 KB L2s between the L1s and the vaults."""
    kw = dict(
        name="3level_silo",
        l2_size_bytes=P.L2_SIZE_BYTES,
    )
    kw.update(overrides)
    return silo_config(num_cores, scale, **kw)


_BUILDERS = {
    "baseline": baseline_config,
    "baseline_dram": baseline_dram_cache_config,
    "baseline_vr": baseline_vr_config,
    "silo": silo_config,
    "silo_co": silo_co_config,
    "vaults_sh": vaults_sh_config,
    "3level_sram": three_level_sram_config,
    "3level_edram": three_level_edram_config,
    "3level_silo": three_level_silo_config,
}

SYSTEM_LABELS = {
    "baseline": "Baseline",
    "baseline_dram": "Baseline+DRAM$",
    "baseline_vr": "Baseline+VR",
    "silo": "SILO",
    "silo_co": "SILO-CO",
    "vaults_sh": "Vaults-Sh",
    "3level_sram": "3level-SRAM",
    "3level_edram": "3level-eDRAM",
    "3level_silo": "3level-SILO",
}


def system_config(name, num_cores=P.NUM_CORES, scale=64, **overrides):
    """Build any evaluated system by name."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError("unknown system %r (choose from %s)"
                       % (name, sorted(_BUILDERS)))
    return builder(num_cores=num_cores, scale=scale, **overrides)
