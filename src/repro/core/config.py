"""The paper's configuration tables, encoded verbatim.

``TABLE_II`` -- microarchitectural parameters of the simulated systems.
``TABLE_III`` -- memory subsystem energy/power parameters.
(Table IV is the workload catalogue in :mod:`repro.workloads`; Table V
is ``repro.workloads.spec.SPEC_MIXES``.)
"""

from repro import params as P

TABLE_II = {
    "processor": {
        "cores": P.NUM_CORES,
        "freq_ghz": P.CORE_FREQ_GHZ,
        "issue_width": P.ISSUE_WIDTH,
        "rob_entries": P.ROB_ENTRIES,
        "isa": "UltraSPARC v9",
    },
    "l1": {
        "size_bytes": P.L1_SIZE_BYTES,
        "ways": P.L1_WAYS,
        "line_bytes": P.BLOCK_BYTES,
        "latency_cycles": P.L1_LATENCY,
        "private": True,
        "prefetcher": "stride",
    },
    "interconnect": {
        "topology": "4x4 2D mesh",
        "hop_cycles": P.MESH_HOP_LATENCY,
    },
    "baseline_llc": {
        "size_bytes": P.BASELINE_LLC_SIZE_BYTES,
        "organization": "shared NUCA",
        "bank_latency_cycles": P.BASELINE_LLC_BANK_LATENCY,
        "avg_round_trip_cycles": P.BASELINE_LLC_AVG_ROUND_TRIP,
        "ways": P.BASELINE_LLC_WAYS,
        "line_bytes": P.BLOCK_BYTES,
        "inclusion": "non-inclusive",
        "protocol": "MESI",
        "replacement": "LRU",
    },
    "silo_llc": {
        "organization": "private, direct-mapped",
        "line_bytes": P.BLOCK_BYTES,
        "page_bytes": P.SILO_PAGE_BYTES,
        "inclusion": "inclusive",
        "protocol": "MOESI",
        "vault_bytes": P.SILO_VAULT_SIZE_BYTES,
        "vault_total_latency_cycles": P.SILO_VAULT_TOTAL_LATENCY,
        "co_vault_bytes": P.SILO_CO_VAULT_SIZE_BYTES,
        "co_vault_total_latency_cycles": P.SILO_CO_VAULT_TOTAL_LATENCY,
    },
    "trad_dram_cache": {
        "size_bytes": P.TRAD_DRAM_CACHE_SIZE_BYTES,
        "organization": "page-based, direct-mapped",
        "latency_ns": P.TRAD_DRAM_CACHE_LATENCY_NS,
    },
    "main_memory": {
        "latency_ns": P.MEMORY_LATENCY_NS,
    },
}

TABLE_III = {
    "baseline_llc": {
        "static_w_per_bank": P.SRAM_LLC_STATIC_W_PER_BANK,
        "dynamic_nj_per_access": P.SRAM_LLC_DYNAMIC_NJ_PER_ACCESS,
    },
    "silo_llc": {
        "static_w_per_vault": P.VAULT_STATIC_W,
        "dynamic_nj_per_access": P.VAULT_DYNAMIC_NJ_PER_ACCESS,
    },
    "main_memory": {
        "static_w": P.MEMORY_STATIC_W,
        "dynamic_nj_per_access": P.MEMORY_DYNAMIC_NJ_PER_ACCESS,
    },
}

#: Table IV: the server workloads and the software stacks the paper ran
#: (our models are statistical stand-ins for these -- see
#: repro.workloads and DESIGN.md).
TABLE_IV = {
    "web_search": {"suite": "scale-out",
                   "software": "Apache Nutch 1.2 / Lucene 3.0.1",
                   "load": "92 clients, 1.4 GB index, 15 GB data segment"},
    "data_serving": {"suite": "scale-out",
                     "software": "Apache Cassandra 0.7.3",
                     "load": "150 clients, 8000 ops/s"},
    "web_frontend": {"suite": "scale-out",
                     "software": "Apache HTTP Server v2.0 (SPECweb2009)",
                     "load": "16K connections, fastCGI"},
    "mapreduce": {"suite": "scale-out",
                  "software": "Hadoop MapReduce, Mahout 0.6",
                  "load": "Bayesian classification"},
    "sat_solver": {"suite": "scale-out",
                   "software": "Cloud9 / Klee SAT solver",
                   "load": "parallel symbolic execution"},
    "tpcc": {"suite": "enterprise",
             "software": "IBM DB2 v8 ESE",
             "load": "64 clients, 100 warehouses (10 GB), 2 GB pool"},
    "oracle": {"suite": "enterprise",
               "software": "Oracle 10g Enterprise",
               "load": "100 warehouses (10 GB), 1.4 GB SGA"},
    "zeus": {"suite": "enterprise",
             "software": "Zeus Web Server",
             "load": "16K connections, fastCGI"},
}

#: The five systems of the main evaluation (Sec. VI-A), in figure order.
EVALUATED_SYSTEMS = ("baseline", "baseline_dram", "silo", "silo_co",
                     "vaults_sh")

#: The 3-level study's systems (Sec. VII-F).
THREE_LEVEL_SYSTEMS = ("3level_sram", "3level_edram", "3level_silo")
