"""SiloDesign: ties the DRAM technology model to the simulated system.

The paper's flow is: sweep the vault design space with CACTI-3DD
(Sec. IV-D), pick the latency-optimized (256 MB @ 5.5 ns -> 11 cycles)
and capacity-optimized (512 MB -> 20 cycles) points, add serialization
(8 cycles, 64-bit TAD interface) and vault controller (4 cycles)
delays, and feed the resulting 23 / 32 cycle access latencies into the
full-system simulation (Table II).  ``SiloDesign`` performs exactly
that derivation from our analytic DRAM model.
"""

from dataclasses import dataclass

from repro import params as P
from repro.dram.stacking import StackConfig
from repro.dram.sweep import (
    sweep_vault_designs, latency_optimized_point, capacity_optimized_point)
from repro.core.systems import silo_config


@dataclass(frozen=True)
class SiloDesign:
    """A SILO design derived from the DRAM model."""

    vault_capacity_bytes: int
    vault_raw_latency_cycles: int
    vault_total_latency_cycles: int
    design_description: str

    @classmethod
    def from_technology(cls, capacity_optimized=False, stack=None):
        """Run the vault design-space sweep and derive the system-level
        vault parameters from the chosen design point."""
        if stack is None:
            stack = StackConfig()
        points = sweep_vault_designs(stack=stack)
        if capacity_optimized:
            point = capacity_optimized_point(points)
        else:
            point = latency_optimized_point(points)
        raw_cycles = max(1, round(point.access_time_ns / P.NS_PER_CYCLE))
        total = (raw_cycles + P.SILO_SERIALIZATION_LATENCY
                 + P.SILO_CONTROLLER_LATENCY)
        return cls(
            vault_capacity_bytes=point.vault_capacity_bytes,
            vault_raw_latency_cycles=raw_cycles,
            vault_total_latency_cycles=total,
            design_description=point.describe(),
        )

    def hierarchy_config(self, num_cores=P.NUM_CORES, scale=64,
                         **overrides):
        """A HierarchyConfig using this design's derived vault
        parameters instead of the Table II constants."""
        return silo_config(
            num_cores=num_cores, scale=scale,
            llc_size_bytes=self.vault_capacity_bytes,
            llc_latency=self.vault_total_latency_cycles,
            **overrides)

    def degraded_capacity(self, offline_vaults, num_cores=P.NUM_CORES):
        """Aggregate die-stacked capacity left when some vaults are
        offline (repro.faults vault events).  SILO loses capacity in
        private vault-sized quanta -- the faulted cores fall back to
        main memory while every other core keeps its full vault.
        """
        offline = set(offline_vaults)
        for v in offline:
            if not 0 <= v < num_cores:
                raise ValueError("vault %d out of range [0, %d)"
                                 % (v, num_cores))
        online = num_cores - len(offline)
        return {
            "online_vaults": online,
            "offline_vaults": len(offline),
            "total_capacity_bytes": self.vault_capacity_bytes * online,
            "capacity_fraction": online / num_cores,
        }

    def matches_table_ii(self, capacity_optimized=False, tolerance=3):
        """True if the derived total latency is within ``tolerance``
        cycles of the paper's Table II value."""
        target = (P.SILO_CO_VAULT_TOTAL_LATENCY if capacity_optimized
                  else P.SILO_VAULT_TOTAL_LATENCY)
        return abs(self.vault_total_latency_cycles - target) <= tolerance
