"""SILO: the paper's contribution, plus every evaluated alternative.

`repro.core.systems` builds the five systems of the main evaluation
(Baseline, Baseline+DRAM$, SILO, SILO-CO, Vaults-Sh) and the 3-level
variants; `repro.core.silo` derives SILO's vault parameters from the
DRAM technology model and checks them against Table II.
"""

from repro.core.config import (
    TABLE_II, TABLE_III, TABLE_IV, EVALUATED_SYSTEMS,
    THREE_LEVEL_SYSTEMS)
from repro.core.systems import (
    baseline_config, baseline_dram_cache_config, silo_config,
    silo_co_config, vaults_sh_config, three_level_sram_config,
    three_level_edram_config, three_level_silo_config, system_config,
)
from repro.core.silo import SiloDesign

__all__ = [
    "TABLE_II", "TABLE_III", "TABLE_IV", "EVALUATED_SYSTEMS",
    "THREE_LEVEL_SYSTEMS",
    "baseline_config", "baseline_dram_cache_config", "silo_config",
    "silo_co_config", "vaults_sh_config", "three_level_sram_config",
    "three_level_edram_config", "three_level_silo_config",
    "system_config", "SiloDesign",
]
