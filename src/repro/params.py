"""Global constants shared across the SILO reproduction.

The values here mirror Table II of the paper ("Microarchitectural
parameters of the simulated systems") and the text of Sec. VI.  Everything
is expressed in core clock cycles at 2 GHz unless a name says otherwise.
"""

# ---------------------------------------------------------------------------
# Clock and block geometry
# ---------------------------------------------------------------------------

CORE_FREQ_GHZ = 2.0
NS_PER_CYCLE = 1.0 / CORE_FREQ_GHZ  # 0.5 ns at 2 GHz

BLOCK_BYTES = 64
BLOCK_SHIFT = 6  # log2(BLOCK_BYTES)

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


def ns_to_cycles(ns):
    """Convert a nanosecond latency to (rounded) 2 GHz core cycles."""
    return int(round(ns / NS_PER_CYCLE))


def cycles_to_ns(cycles):
    """Convert 2 GHz core cycles to nanoseconds."""
    return cycles * NS_PER_CYCLE


# ---------------------------------------------------------------------------
# Table II: microarchitectural parameters
# ---------------------------------------------------------------------------

NUM_CORES = 16
ROB_ENTRIES = 128
ISSUE_WIDTH = 3

L1_SIZE_BYTES = 64 * KB
L1_WAYS = 8
L1_LATENCY = 3  # cycles

L2_SIZE_BYTES = 512 * KB  # 3-level studies (Sec. VII-F)
L2_WAYS = 8
L2_LATENCY = 8  # cycles

MESH_HOP_LATENCY = 3  # cycles per hop (4x4 2D mesh)

# Baseline shared on-chip LLC (Scale-out Processors style)
BASELINE_LLC_SIZE_BYTES = 8 * MB
BASELINE_LLC_WAYS = 16
BASELINE_LLC_BANK_LATENCY = 5  # cycles per bank access
# "The average round trip time for an LLC hit, including the NOC, is 23
# cycles" -- this emerges from bank latency + mesh hops in our model.
BASELINE_LLC_AVG_ROUND_TRIP = 23

# SILO die-stacked DRAM LLC (per-core private vault)
SILO_VAULT_SIZE_BYTES = 256 * MB
SILO_VAULT_RAW_LATENCY = 11        # cycles: latency-optimized DRAM array
SILO_SERIALIZATION_LATENCY = 8     # cycles: 64-bit interface, TAD transfer
SILO_CONTROLLER_LATENCY = 4        # cycles: vault controller
SILO_VAULT_TOTAL_LATENCY = 23      # = 11 + 8 + 4

SILO_CO_VAULT_SIZE_BYTES = 512 * MB
SILO_CO_VAULT_RAW_LATENCY = 20
SILO_CO_VAULT_TOTAL_LATENCY = 32   # = 20 + 8 + 4

SILO_PAGE_BYTES = 512

# Die-stacked shared vaults (Vaults-Sh): average hit round trip 41 cycles
VAULTS_SH_AVG_ROUND_TRIP = 41

# Conventional DRAM cache (Baseline+DRAM$)
TRAD_DRAM_CACHE_SIZE_BYTES = 8 * GB
TRAD_DRAM_CACHE_LATENCY_NS = 40.0
TRAD_DRAM_CACHE_LATENCY = ns_to_cycles(TRAD_DRAM_CACHE_LATENCY_NS)  # 80
TRAD_DRAM_CACHE_PAGE_BYTES = 4096

# Main memory
MEMORY_LATENCY_NS = 50.0
MEMORY_LATENCY = ns_to_cycles(MEMORY_LATENCY_NS)  # 100 cycles

# 3-level study LLCs (Sec. VII-F)
THREE_LEVEL_SRAM_LLC_BYTES = 32 * MB
THREE_LEVEL_EDRAM_LLC_BYTES = 128 * MB
THREE_LEVEL_LLC_BANK_LATENCY = 7

# ---------------------------------------------------------------------------
# Resilience: SECDED ECC geometry and fault-recovery parameters
# ---------------------------------------------------------------------------

# Die-stacked DRAM vault lines, vault tag metadata and duplicate-tag
# directory entries are protected at 64-bit word granularity by a
# SECDED (72,64) extended Hamming code (repro.faults.ecc): 7 syndrome
# parity bits plus one overall parity bit per word.
ECC_DATA_BITS = 64
ECC_CHECK_BITS = 8
ECC_CODEWORD_BITS = ECC_DATA_BITS + ECC_CHECK_BITS  # 72

# Transient memory-channel stalls (refresh-storm style) are retried
# with exponential backoff; a stall event costs the controller between
# 1 and FAULT_STALL_RETRIES_MAX retries of the bank busy time.
FAULT_STALL_RETRIES_MAX = 4

# ---------------------------------------------------------------------------
# Table III: energy / power parameters for the memory subsystem
# ---------------------------------------------------------------------------

SRAM_LLC_STATIC_W_PER_BANK = 0.030     # 30 mW per bank
SRAM_LLC_DYNAMIC_NJ_PER_ACCESS = 0.25

VAULT_STATIC_W = 0.120                 # 120 mW per vault
VAULT_DYNAMIC_NJ_PER_ACCESS = 0.40

MEMORY_STATIC_W = 4.0
MEMORY_DYNAMIC_NJ_PER_ACCESS = 20.0

# ---------------------------------------------------------------------------
# Unit annotations (consumed by repro.verify.units, rule SL012)
# ---------------------------------------------------------------------------

#: Dimension of every constant above, as a unit expression
#: (``cycle``, ``ns``, ``byte``, ``ns/cycle``, ``1`` for pure counts
#: and ratios).  The flow analyzer propagates these through arithmetic
#: and flags mixed-unit ``+``/``-``/comparisons; it also re-derives
#: each definition here against its annotation, so the table cannot
#: silently drift from the code.
UNITS = {
    "CORE_FREQ_GHZ": "cycle/ns",
    "NS_PER_CYCLE": "ns/cycle",
    "BLOCK_BYTES": "byte/block",
    "BLOCK_SHIFT": "1",
    "KB": "byte", "MB": "byte", "GB": "byte",
    "NUM_CORES": "1", "ROB_ENTRIES": "1", "ISSUE_WIDTH": "1",
    "L1_SIZE_BYTES": "byte", "L1_WAYS": "1", "L1_LATENCY": "cycle",
    "L2_SIZE_BYTES": "byte", "L2_WAYS": "1", "L2_LATENCY": "cycle",
    "MESH_HOP_LATENCY": "cycle",
    "BASELINE_LLC_SIZE_BYTES": "byte",
    "BASELINE_LLC_WAYS": "1",
    "BASELINE_LLC_BANK_LATENCY": "cycle",
    "BASELINE_LLC_AVG_ROUND_TRIP": "cycle",
    "SILO_VAULT_SIZE_BYTES": "byte",
    "SILO_VAULT_RAW_LATENCY": "cycle",
    "SILO_SERIALIZATION_LATENCY": "cycle",
    "SILO_CONTROLLER_LATENCY": "cycle",
    "SILO_VAULT_TOTAL_LATENCY": "cycle",
    "SILO_CO_VAULT_SIZE_BYTES": "byte",
    "SILO_CO_VAULT_RAW_LATENCY": "cycle",
    "SILO_CO_VAULT_TOTAL_LATENCY": "cycle",
    "SILO_PAGE_BYTES": "byte",
    "VAULTS_SH_AVG_ROUND_TRIP": "cycle",
    "TRAD_DRAM_CACHE_SIZE_BYTES": "byte",
    "TRAD_DRAM_CACHE_LATENCY_NS": "ns",
    "TRAD_DRAM_CACHE_LATENCY": "cycle",
    "TRAD_DRAM_CACHE_PAGE_BYTES": "byte",
    "MEMORY_LATENCY_NS": "ns",
    "MEMORY_LATENCY": "cycle",
    "THREE_LEVEL_SRAM_LLC_BYTES": "byte",
    "THREE_LEVEL_EDRAM_LLC_BYTES": "byte",
    "THREE_LEVEL_LLC_BANK_LATENCY": "cycle",
    "ECC_DATA_BITS": "bit",
    "ECC_CHECK_BITS": "bit",
    "ECC_CODEWORD_BITS": "bit",
    "FAULT_STALL_RETRIES_MAX": "1",
    "SRAM_LLC_STATIC_W_PER_BANK": "W",
    "SRAM_LLC_DYNAMIC_NJ_PER_ACCESS": "nj/access",
    "VAULT_STATIC_W": "W",
    "VAULT_DYNAMIC_NJ_PER_ACCESS": "nj/access",
    "MEMORY_STATIC_W": "W",
    "MEMORY_DYNAMIC_NJ_PER_ACCESS": "nj/access",
}

#: Unit signatures of the key model functions: positional parameter
#: units (None = unchecked) and the declared return unit.  Keyed by
#: fully-qualified dotted name so call sites anywhere in the tree are
#: checked through their import maps.
UNIT_FUNCTIONS = {
    "repro.params.ns_to_cycles": {
        "params": ["ns"], "returns": "cycle"},
    "repro.params.cycles_to_ns": {
        "params": ["cycle"], "returns": "ns"},
    "repro.dram.timing.bitline_delay_ns": {
        "params": [], "returns": "ns"},
    "repro.dram.timing.wordline_delay_ns": {
        "params": [], "returns": "ns"},
    "repro.dram.timing.global_wordline_delay_ns": {
        "params": [], "returns": "ns"},
    "repro.dram.timing.decoder_delay_ns": {
        "params": [], "returns": "ns"},
    "repro.dram.timing.access_time_ns": {
        "params": [], "returns": "ns"},
    "repro.dram.timing.commodity_reference_access_ns": {
        "params": [], "returns": "ns"},
}
