"""Out-of-order core performance model.

The paper models ARM-like 3-way OoO cores (128-entry ROB) at 2 GHz and
attributes performance differences to memory system behaviour: server
workloads have low memory-level parallelism (MLP), so L1 misses expose
most of their latency to the core (Sec. II-B).  We capture that with a
first-order interval model:

``cycles = instructions * base_cpi
         + sum(ifetch_miss_latency) * ifetch_stall_factor
         + sum(data_miss_latency) / mlp``

* ``base_cpi`` -- CPI with a perfect memory system beyond the L1s
  (issue restrictions, branch mispredictions, dependencies).
* Instruction-fetch misses starve the front end; a 128-entry ROB hides
  only a sliver of that, captured by ``ifetch_stall_factor`` (< 1).
* Data misses overlap with each other up to the workload's MLP; low MLP
  (1.2-2 for server workloads) exposes most of each miss.

The model keeps *raw* latency sums per service level so that experiment
code can re-evaluate performance under scaled latencies (Fig. 2, Fig. 4)
without re-simulating.
"""

from dataclasses import dataclass

from repro.obs.stats import Distribution

# Service levels an access can be satisfied at.
LEVEL_L1 = 0
LEVEL_L2 = 1
LEVEL_LLC_LOCAL = 2    # shared-LLC hit / local vault hit
LEVEL_LLC_REMOTE = 3   # remote vault hit / dirty peer-L1 supply
LEVEL_DRAM_CACHE = 4
LEVEL_MEMORY = 5
NUM_LEVELS = 6

LEVEL_NAMES = ("L1", "L2", "LLC_LOCAL", "LLC_REMOTE", "DRAM_CACHE",
               "MEMORY")


@dataclass(frozen=True)
class CoreParams:
    """Per-workload core model parameters."""

    base_cpi: float = 0.7
    mlp: float = 1.5
    ifetch_stall_factor: float = 0.45
    ifetch_per_instr: float = 1.0 / 16.0  # one 64B iblock per 16 instrs
    data_refs_per_instr: float = 0.25

    def __post_init__(self):
        if self.base_cpi <= 0:
            raise ValueError("base_cpi must be positive")
        if self.mlp < 1.0:
            raise ValueError("mlp must be >= 1")


class CoreModel:
    """One core's instruction and stall accounting."""

    __slots__ = ("core_id", "params", "instructions",
                 "data_latency", "data_count",
                 "ifetch_latency", "ifetch_count",
                 "rw_shared_latency", "rw_shared_count", "latency_hist")

    def __init__(self, core_id, params):
        self.core_id = core_id
        self.params = params
        self.instructions = 0
        # Raw (unscaled) latency sums and access counts, indexed by
        # service level, split by access kind and by whether the block
        # belongs to the RW-shared region (for Fig. 4 re-evaluation).
        self.data_latency = [0.0] * NUM_LEVELS
        self.data_count = [0] * NUM_LEVELS
        self.ifetch_latency = [0.0] * NUM_LEVELS
        self.ifetch_count = [0] * NUM_LEVELS
        self.rw_shared_latency = 0.0
        self.rw_shared_count = 0
        # Exposed-latency histograms per service level (L1 hits return
        # before reaching record_*, so these cover L1 misses -- the
        # accesses whose latency the core actually sees).
        self.latency_hist = [Distribution("latency", desc=name)
                             for name in LEVEL_NAMES]

    def retire(self, instructions):
        """Account for ``instructions`` retired instructions."""
        self.instructions += instructions

    def record_data(self, level, latency, rw_shared=False):
        self.data_latency[level] += latency
        self.data_count[level] += 1
        self.latency_hist[level].record(latency)
        if rw_shared:
            self.rw_shared_latency += latency
            self.rw_shared_count += 1

    def record_ifetch(self, level, latency):
        self.ifetch_latency[level] += latency
        self.ifetch_count[level] += 1
        self.latency_hist[level].record(latency)

    # -- performance evaluation -------------------------------------------

    def stall_cycles(self, level_scale=None, rw_shared_extra_factor=0.0):
        """Total stall cycles.

        ``level_scale`` optionally multiplies the recorded latency of
        each service level (a 6-element sequence), which re-evaluates
        the run under different LLC/memory latencies.
        ``rw_shared_extra_factor`` adds that multiple of the RW-shared
        latency sum on top (e.g. 1.0 doubles RW-shared block latency,
        3.0 quadruples it -- Fig. 4).
        """
        p = self.params
        data = 0.0
        ifetch = 0.0
        if level_scale is None:
            data = sum(self.data_latency)
            ifetch = sum(self.ifetch_latency)
        else:
            for lvl in range(NUM_LEVELS):
                data += self.data_latency[lvl] * level_scale[lvl]
                ifetch += self.ifetch_latency[lvl] * level_scale[lvl]
        data += self.rw_shared_latency * rw_shared_extra_factor
        return ifetch * p.ifetch_stall_factor + data / p.mlp

    def cycles(self, level_scale=None, rw_shared_extra_factor=0.0):
        return (self.instructions * self.params.base_cpi
                + self.stall_cycles(level_scale, rw_shared_extra_factor))

    def ipc(self, level_scale=None, rw_shared_extra_factor=0.0):
        cyc = self.cycles(level_scale, rw_shared_extra_factor)
        return self.instructions / cyc if cyc > 0 else 0.0

    def reset(self):
        # In place, not rebound: the stats registry and the fast-path
        # shadow filter (repro.sim.fastpath) hold references to these
        # lists across reset_stats().
        self.instructions = 0
        for lvl in range(NUM_LEVELS):
            self.data_latency[lvl] = 0.0
            self.data_count[lvl] = 0
            self.ifetch_latency[lvl] = 0.0
            self.ifetch_count[lvl] = 0
        self.rw_shared_latency = 0.0
        self.rw_shared_count = 0
        for h in self.latency_hist:
            h.reset()

    def register_stats(self, group):
        """Register this core's statistics under ``group`` (counters
        are views; resetting goes through :meth:`reset` so the lists
        and histograms stay the objects the hot path writes to)."""
        group.bind(self, "instructions", desc="instructions retired",
                   resettable=False)
        for lvl, name in enumerate(LEVEL_NAMES):
            g = group.group(name.lower())
            g.callback("data_count",
                       lambda c=self, l=lvl: c.data_count[l],
                       desc="data accesses satisfied here")
            g.callback("ifetch_count",
                       lambda c=self, l=lvl: c.ifetch_count[l],
                       desc="ifetches satisfied here")
            g.callback("data_latency",
                       lambda c=self, l=lvl: c.data_latency[l],
                       desc="summed exposed data latency (cycles)")
            g.add(self.latency_hist[lvl])
        group.on_reset(self.reset)
        return group
