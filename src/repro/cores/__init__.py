"""Out-of-order core performance model."""

from repro.cores.perf_model import CoreModel, CoreParams

__all__ = ["CoreModel", "CoreParams"]
