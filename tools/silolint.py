#!/usr/bin/env python
"""Standalone entry point for silolint, the simulator lint pass.

Equivalent to ``python -m repro.verify lint`` but runnable from a
checkout without setting ``PYTHONPATH`` (it bootstraps ``src/`` onto
``sys.path`` itself), which is what editor integrations and pre-commit
hooks want.

Usage: python tools/silolint.py [paths...] [--json] [--select SLxxx]
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.verify.lint import main  # noqa: E402


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
