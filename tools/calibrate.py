"""Calibration helper: run baseline & SILO on the scale-out suite and
print the numbers we tune against the paper's anchors.

Usage: python tools/calibrate.py [quick|standard]
"""

import sys
import time

from repro import simulate, system_config, SamplingPlan
from repro.sim.sampling import PRESETS
from repro.workloads.scaleout import SCALEOUT_WORKLOADS

TARGET_SPEEDUP = {
    "web_search": 1.29,
    "data_serving": 1.15,
    "web_frontend": 1.05,
    "mapreduce": 1.54,
    "sat_solver": 1.37,
}


def main():
    plan = PRESETS[sys.argv[1] if len(sys.argv) > 1 else "quick"]
    geo = 1.0
    for name, spec in SCALEOUT_WORKLOADS.items():
        t0 = time.time()
        base = simulate(system_config("baseline"), spec, plan)
        silo = simulate(system_config("silo"), spec, plan)
        dt = time.time() - t0
        bp, sp = base.performance(), silo.performance()
        speedup = sp / bp
        geo *= speedup
        bl, br, bm = base.llc_breakdown()
        sl, sr, sm = silo.llc_breakdown()
        btot = bl + br + bm
        stot = sl + sr + sm
        miss_red = 1 - (sm / stot) / (bm / btot) if bm else 0.0
        print("%-13s speedup %.3f (target %.2f)  base IPC/core %.3f  "
              "base hit %.2f  silo hit %.2f (local %.2f of hits)  "
              "missred %.2f  mpki %.1f->%.1f  [%.0fs]"
              % (name, speedup, TARGET_SPEEDUP[name],
                 bp / base.system.num_cores,
                 1 - bm / btot, 1 - sm / stot,
                 sl / (sl + sr) if sl + sr else 0, miss_red,
                 base.llc_mpki(), silo.llc_mpki(), dt))
    print("geomean speedup: %.3f (target 1.28)" % geo ** 0.2)


if __name__ == "__main__":
    main()
