#!/usr/bin/env python
"""Technology scaling: what taller DRAM stacks buy SILO.

Sec. IV-D's "Technology Scaling" paragraph projects that wafer thinning
will allow tens of stacked layers.  This example sweeps the stack
height, re-runs the vault design-space exploration at each height,
checks the thermal budget, and reports the best latency-optimized vault
per generation -- then estimates what the added capacity is worth on
the Web Search model (whose secondary working set is the largest in the
suite).

Run:  python examples/stacking_roadmap.py
"""

from repro.params import MB
from repro.dram.stacking import StackConfig
from repro.dram.sweep import sweep_vault_designs, best_latency_at_capacity
from repro.core.systems import silo_config, baseline_config
from repro.sim.driver import simulate
from repro.sim.sampling import SamplingPlan
from repro.workloads.scaleout import WEB_SEARCH

PLAN = SamplingPlan(30_000, 12_000)


def best_vault(layers):
    stack = StackConfig(layers=layers)
    points = sweep_vault_designs(stack=stack)
    # largest capacity reachable within +25% of the fastest design
    fastest = min(p.access_time_ns for p in points)
    feasible = [p for p in points if p.access_time_ns <= 1.25 * fastest]
    return max(feasible, key=lambda p: p.vault_capacity_bytes), stack


def main():
    print("%-7s %-10s %-12s %-10s %s"
          % ("layers", "thermal", "vault", "latency", "organization"))
    chosen = {}
    for layers in (2, 4, 8):
        point, stack = best_vault(layers)
        chosen[layers] = point
        print("%-7d +%.1fC %-4s %7.0f MB   %5.2f ns   %s"
              % (layers, stack.temperature_rise_celsius(),
                 "ok" if stack.is_thermally_feasible() else "HOT",
                 point.vault_capacity_mb, point.access_time_ns,
                 str(point.die.tile)))

    print()
    print("Web Search performance per stack generation "
          "(vs the 8MB shared-LLC baseline):")
    base = simulate(baseline_config(), WEB_SEARCH, PLAN).performance()
    for layers, point in chosen.items():
        from repro.params import ns_to_cycles, SILO_SERIALIZATION_LATENCY
        from repro.params import SILO_CONTROLLER_LATENCY
        total_cycles = (ns_to_cycles(point.access_time_ns)
                        + SILO_SERIALIZATION_LATENCY
                        + SILO_CONTROLLER_LATENCY)
        config = silo_config(llc_size_bytes=point.vault_capacity_bytes,
                             llc_latency=total_cycles)
        perf = simulate(config, WEB_SEARCH, PLAN).performance()
        print("  %d layers (%4.0f MB/vault @ %d cycles): speedup %.3f"
              % (layers, point.vault_capacity_mb, total_cycles,
                 perf / base))


if __name__ == "__main__":
    main()
