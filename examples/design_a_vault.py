#!/usr/bin/env python
"""Architect a die-stacked DRAM vault from the technology model up.

Walks the paper's Sec. IV flow: explore the tile-dimension trade-off,
sweep the full vault design space under a 5 mm^2 / 4-die stacking
budget, pick the latency- and capacity-optimized points (Table I), and
derive the system-level vault parameters that Table II uses.

Run:  python examples/design_a_vault.py
"""

from repro.dram import (StackConfig, sweep_vault_designs, pareto_frontier,
                        latency_optimized_point, capacity_optimized_point,
                        tile_dimension_sweep)
from repro.core.silo import SiloDesign


def main():
    print("== Tile dimension trade-off (Fig. 7) ==")
    for r in tile_dimension_sweep():
        print("  %9s  latency %5.2f ns (%.2fx)   area %5.1f mm^2 (%.2fx)"
              % (r["tile"], r["latency_ns"], r["norm_latency"],
                 r["area_mm2"], r["norm_area"]))

    stack = StackConfig(layers=4, footprint_mm2=5.0)
    print()
    print("== Vault design space under a %d-die, %.0f mm^2 stack =="
          % (stack.layers, stack.footprint_mm2))
    print("  thermal rise: %.1f C (feasible: %s)"
          % (stack.temperature_rise_celsius(),
             stack.is_thermally_feasible()))

    points = sweep_vault_designs(stack=stack)
    frontier = pareto_frontier(points)
    print("  %d designs fit the budget; Pareto frontier:" % len(points))
    for p in frontier[::4]:
        print("    %s" % p.describe())

    lo = latency_optimized_point(points)
    co = capacity_optimized_point(points)
    print()
    print("latency-optimized:  %s" % lo.describe())
    print("capacity-optimized: %s" % co.describe())
    print("  latency ratio %.2fx, area-efficiency ratio %.2fx (Table I)"
          % (co.access_time_ns / lo.access_time_ns,
             co.area_efficiency() / lo.area_efficiency()))

    print()
    print("== Derived system parameters (Table II) ==")
    for label, capacity_opt in (("SILO", False), ("SILO-CO", True)):
        d = SiloDesign.from_technology(capacity_optimized=capacity_opt)
        print("  %-8s %4d MB/vault, %2d cycles raw -> %2d cycles total "
              "access  (matches Table II: %s)"
              % (label, d.vault_capacity_bytes >> 20,
                 d.vault_raw_latency_cycles,
                 d.vault_total_latency_cycles,
                 d.matches_table_ii(capacity_optimized=capacity_opt)))


if __name__ == "__main__":
    main()
