#!/usr/bin/env python
"""Quickstart: compare the baseline server CPU against SILO on Web
Search.

Builds the paper's 16-core baseline (8 MB shared NUCA LLC) and SILO
(per-core private 256 MB die-stacked DRAM vaults), runs the Web Search
workload model on both, and reports performance, hit breakdowns and
memory-subsystem energy.

Run:  python examples/quickstart.py
"""

from repro import (simulate, system_config, scaleout_workload,
                   SamplingPlan, EnergyModel)


def main():
    plan = SamplingPlan(warmup_events=30_000, measure_events=12_000)
    workload = scaleout_workload("web_search")

    print("Simulating Web Search on the baseline (8MB shared LLC)...")
    base = simulate(system_config("baseline"), workload, plan)
    print("Simulating Web Search on SILO (256MB private vaults)...")
    silo = simulate(system_config("silo"), workload, plan)

    speedup = silo.performance() / base.performance()
    print()
    print("aggregate IPC: baseline %.2f   SILO %.2f   (speedup %.2fx)"
          % (base.performance(), silo.performance(), speedup))

    for name, result in (("baseline", base), ("SILO", silo)):
        local, remote, miss = result.llc_breakdown()
        total = local + remote + miss
        print("%-9s LLC accesses: %5.1f%% local hits, %5.1f%% remote "
              "hits, %5.1f%% off-chip misses  (%.1f MPKI)"
              % (name, 100 * local / total, 100 * remote / total,
                 100 * miss / total, result.llc_mpki()))

    model = EnergyModel()
    base_e = model.breakdown(base.system)
    silo_e = model.breakdown(silo.system)
    saving = 1 - silo_e.total_dynamic_nj / base_e.total_dynamic_nj
    print()
    print("memory-subsystem dynamic energy: SILO saves %.0f%% "
          "(fewer off-chip accesses)" % (100 * saving))


if __name__ == "__main__":
    main()
