#!/usr/bin/env python
"""Performance isolation under workload colocation (Table VI scenario).

A latency-critical Web Search service runs on 8 cores.  A memory-
hungry batch job (SPEC'06 mcf) is then colocated on the other 8 cores.
Under a shared LLC the batch job evicts the service's working set;
under SILO's private vaults the service is isolated.

Run:  python examples/colocation_isolation.py
"""

from repro import system_config, System, SamplingPlan
from repro.cores.perf_model import CoreParams
from repro.sim.driver import run_system
from repro.workloads.scaleout import WEB_SEARCH
from repro.workloads.spec import SPEC_APPS
from repro.workloads.colocation import generate_colocation_traces
from repro.workloads.generator import generate_traces

PLAN = SamplingPlan(30_000, 12_000)
SERVICE_CORES = list(range(8))
BATCH_CORES = list(range(8, 16))


def web_search_ipc(system_name, colocated):
    config = system_config(system_name)
    mcf = SPEC_APPS["mcf"]
    params = [WEB_SEARCH.core] * 8 + (
        [mcf.core] * 8 if colocated else [CoreParams()] * 8)
    system = System(config, params)
    if colocated:
        traces, _ = generate_colocation_traces(
            [(WEB_SEARCH, SERVICE_CORES), (mcf, BATCH_CORES)],
            events_per_core=PLAN.total_events, scale=config.scale)
    else:
        traces, _ = generate_traces(
            WEB_SEARCH, num_cores=8, events_per_core=PLAN.total_events,
            scale=config.scale, core_ids=SERVICE_CORES)
    run_system(system, traces, PLAN.warmup_events, PLAN.measure_events)
    return sum(system.cores[c].ipc() for c in SERVICE_CORES)


def main():
    print("Web Search on 8 cores; mcf batch job on the other 8.\n")
    baseline_alone = web_search_ipc("baseline", colocated=False)
    print("%-28s %-12s %-12s %s" % ("setup", "shared LLC", "SILO",
                                    "(normalized to alone/shared)"))
    for label, colocated in (("Web Search alone", False),
                             ("Web Search + mcf", True)):
        shared = web_search_ipc("baseline", colocated) / baseline_alone
        silo = web_search_ipc("silo", colocated) / baseline_alone
        print("%-28s %-12.3f %-12.3f" % (label, shared, silo))
    print()
    print("The shared LLC loses performance under colocation; SILO's "
          "private vaults isolate the service (Table VI).")


if __name__ == "__main__":
    main()
