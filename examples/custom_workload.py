#!/usr/bin/env python
"""Model your own server workload and size its LLC.

Defines a synthetic in-memory key-value store: a hot object cache, a
sharded on-heap index (the secondary working set), per-core request
scratch space, a small lock table, and a cold multi-GB value store.
Then asks the two questions the paper's methodology answers:

1. How does the workload respond to shared-LLC capacity (a Fig. 1-style
   sweep)?
2. What does SILO buy it over the baseline and the DRAM-cache design?

Run:  python examples/custom_workload.py
"""

from repro import (WorkloadSpec, RegionSpec, CodeSpec, CoreParams,
                   simulate, system_config, SamplingPlan)
from repro.params import MB

KV_STORE = WorkloadSpec(
    name="kv_store",
    code=CodeSpec(size_mb=2.0, alpha=1.1),
    regions=(
        RegionSpec("object_cache", 2.0, "zipf", "shared", 0.03,
                   alpha=1.0, write_fraction=0.10),
        RegionSpec("index", 220.0, "scan", "partitioned", 0.04,
                   write_fraction=0.05, page_sparse=True),
        RegionSpec("scratch", 0.125, "zipf", "private", 0.870,
                   alpha=1.35, write_fraction=0.40),
        RegionSpec("locks", 0.3, "zipf", "shared", 0.01, alpha=0.6,
                   write_fraction=0.50),
        RegionSpec("values", 24000.0, "uniform", "shared", 0.05),
    ),
    core=CoreParams(base_cpi=0.8, mlp=3.5, data_refs_per_instr=0.26),
    rw_shared_region="locks",
)

PLAN = SamplingPlan(30_000, 12_000)


def main():
    print("== Capacity sensitivity (Fig. 1 methodology) ==")
    base_perf = None
    for cap_mb in (8, 64, 256, 512):
        config = system_config("baseline",
                               llc_size_bytes=cap_mb * MB)
        perf = simulate(config, KV_STORE, PLAN).performance()
        if base_perf is None:
            base_perf = perf
        print("  %4d MB shared LLC: %.3f (normalized)"
              % (cap_mb, perf / base_perf))

    print()
    print("== Evaluated systems ==")
    base = simulate(system_config("baseline"), KV_STORE, PLAN)
    for name in ("baseline_dram", "vaults_sh", "silo"):
        r = simulate(system_config(name), KV_STORE, PLAN)
        local, remote, miss = r.llc_breakdown()
        total = local + remote + miss
        print("  %-14s speedup %.3f   (%.0f%% off-chip misses)"
              % (name, r.performance() / base.performance(),
                 100 * miss / total))
    print()
    print("If the index fits a private vault but not the shared LLC, "
          "SILO wins; the cold value store is irreducible for everyone.")


if __name__ == "__main__":
    main()
