"""Run-engine acceptance benchmark: fig10 with standard sampling.

Three timed phases over the same grid:

1. cold serial (``jobs=1``) into an empty cache,
2. parallel fan-out (``jobs=4``),
3. warm-cache replay (``jobs=1``, same cache).

All three must produce bit-identical rows.  The warm replay must finish
in under 10% of the cold serial time.  The parallel phase must be at
least 2x faster than serial when the host actually has >= 4 cores (on
smaller hosts the honest timing is still recorded in
BENCH_engine.json, together with the host core count).
"""

import os
import time

from repro.experiments.performance import fig10_scaleout
from repro.sim import engine as sim_engine
from repro.sim.sampling import PRESETS


def _timed(engine):
    start = time.perf_counter()
    with sim_engine.use_engine(engine):
        rows = fig10_scaleout(plan=PRESETS["standard"])
    return rows, time.perf_counter() - start


def test_engine_speedup(tmp_path, bench_extra):
    cache = sim_engine.RunCache(str(tmp_path))

    cold = sim_engine.RunEngine(jobs=1, cache=cache)
    serial_rows, serial_s = _timed(cold)
    assert cold.executed == cold.unique_points > 0

    par_engine = sim_engine.RunEngine(jobs=4)
    par_rows, par_s = _timed(par_engine)
    assert par_rows == serial_rows      # bit-identical, no tolerance
    assert par_engine.executed == par_engine.unique_points

    warm = sim_engine.RunEngine(jobs=1, cache=cache)
    warm_rows, warm_s = _timed(warm)
    assert warm_rows == serial_rows     # cache replay is bit-identical
    assert warm.executed == 0
    assert warm.cache_hits == warm.unique_points

    # The ratio is always recorded, but the speedup gate only arms on
    # hosts with at least as many real cores as jobs: with fewer cores
    # the pool is pure serialization + IPC overhead (0.848x measured
    # on the 1-CPU CI host), and asserting >=1x there just tests the
    # scheduler's mood.
    cpus = os.cpu_count() or 1
    parallel_gate_active = cpus >= 4
    bench_extra({
        "figure": "fig10",
        "sampling": "standard",
        "host_cpu_count": cpus,
        "cold_serial_s": round(serial_s, 3),
        "parallel_jobs4_s": round(par_s, 3),
        "warm_cache_s": round(warm_s, 3),
        "parallel_speedup": round(serial_s / par_s, 3),
        "parallel_gate_active": parallel_gate_active,
        "warm_cache_fraction_of_serial": round(warm_s / serial_s, 4),
    })

    assert warm_s < 0.10 * serial_s
    if parallel_gate_active:
        assert serial_s / par_s >= 2.0
