"""Fig. 13: memory-subsystem dynamic energy, Baseline vs SILO."""

from repro.experiments.energy import fig13_energy


def test_fig13_energy(run_once, record_result):
    rows = run_once(fig13_energy)
    record_result("fig13", rows, title="Fig. 13: dynamic energy "
                  "(normalized to Baseline total)")
    by_key = {(r["workload"], r["system"]): r for r in rows}
    for wl in ("Web Search", "Data Serving", "Web Frontend",
               "MapReduce", "SAT Solver"):
        base = by_key[(wl, "Baseline")]
        silo = by_key[(wl, "SILO")]
        assert base["total_dynamic"] == 1.0
        # paper: SILO cuts dynamic energy 26-87% via fewer off-chip
        # accesses
        assert silo["total_dynamic"] < 0.95
        assert silo["memory_dynamic"] < base["memory_dynamic"]
        # but spends more in the LLC itself (DRAM vaults)
        assert silo["llc_dynamic"] > base["llc_dynamic"]
        # Sec. VII-C: SILO's total LLC power stays under ~2.5 W
        assert silo["llc_power_w"] < 3.0
