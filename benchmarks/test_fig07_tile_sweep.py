"""Fig. 7: effect of DRAM tile dimensions on access latency and area."""

from repro.experiments.technology import fig7_tile_sweep


def test_fig7_tile_sweep(run_once, record_result):
    rows = run_once(fig7_tile_sweep)
    record_result("fig7", rows, title="Fig. 7: tile dimensions vs "
                  "normalized latency/area")
    by_tile = {r["tile"]: r for r in rows}
    # paper anchors: 1024->256 cuts latency ~64% for ~49% more area;
    # 128x128 saves little more latency at a hefty area cost
    assert 0.30 <= by_tile["256x256"]["norm_latency"] <= 0.45
    assert 1.3 <= by_tile["256x256"]["norm_area"] <= 1.6
    assert by_tile["128x128"]["norm_area"] > 2.0
    gain = (by_tile["256x256"]["norm_latency"]
            - by_tile["128x128"]["norm_latency"])
    assert gain < 0.10  # diminishing returns past 256x256
