"""Fig. 10: performance on scale-out workloads, all five systems."""

from repro.experiments.common import geomean
from repro.experiments.performance import fig10_scaleout


def test_fig10_scaleout(run_once, record_result):
    rows = run_once(fig10_scaleout)
    record_result("fig10", rows, title="Fig. 10: scale-out performance "
                  "(normalized to Baseline)")
    perf = {(r["workload"], r["system"]): r["normalized_performance"]
            for r in rows}
    workloads = ("Web Search", "Data Serving", "Web Frontend",
                 "MapReduce", "SAT Solver")
    # SILO consistently outperforms the baseline designs (paper: 5-54%)
    for wl in workloads:
        assert perf[(wl, "SILO")] > 1.0
        assert perf[(wl, "SILO")] > perf[(wl, "Vaults-Sh")]
    # MapReduce gains the most, Web Frontend the least (paper ordering)
    silo = {wl: perf[(wl, "SILO")] for wl in workloads}
    assert max(silo, key=silo.get) == "MapReduce"
    assert min(silo, key=silo.get) == "Web Frontend"
    # geomean speedup in the paper's neighbourhood (+28%)
    g = geomean(silo.values())
    assert 1.15 <= g <= 1.40
    # SILO-CO trails SILO (higher vault latency, Sec. VII-A)
    assert perf[("Geomean", "SILO-CO")] < perf[("Geomean", "SILO")]
