"""Table VI: performance isolation under colocation."""

from repro.experiments.isolation import table6_isolation


def test_table6_isolation(run_once, record_result):
    rows = run_once(table6_isolation)
    record_result("table6", rows, title="Table VI: Web Search "
                  "performance (normalized to alone @ shared LLC)")
    alone = {r["setup"]: r for r in rows}["Web Search alone"]
    coloc = {r["setup"]: r for r in rows}["Web Search + mcf"]
    # paper: SILO improves Web Search ~+20% and is unaffected by mcf;
    # the shared LLC loses ~10% under colocation
    assert alone["shared_llc"] == 1.0
    assert alone["silo"] > 1.05
    assert coloc["shared_llc"] < 0.97
    silo_retention = coloc["silo"] / alone["silo"]
    shared_retention = coloc["shared_llc"] / alone["shared_llc"]
    assert silo_retention > shared_retention
    assert silo_retention > 0.93
