"""Ablation: the optional L1-D stride prefetcher (Table II).

The workload models describe post-prefetch residual miss streams, so
the evaluated systems run without the prefetcher; this ablation turns
it on and checks it behaves sanely (never a large regression, extra
cache traffic accounted)."""

from repro.core.systems import baseline_config
from repro.sim.driver import simulate
from repro.experiments.common import resolve_plan, DEFAULT_SCALE, DEFAULT_SEED
from repro.workloads.scaleout import SCALEOUT_WORKLOADS


def ablate_prefetcher(plan=None, scale=DEFAULT_SCALE, seed=DEFAULT_SEED,
                      workloads=("mapreduce", "web_search")):
    plan = resolve_plan(plan)
    rows = []
    for wname in workloads:
        spec = SCALEOUT_WORKLOADS[wname]
        off = simulate(baseline_config(scale=scale), spec, plan,
                       seed=seed)
        on = simulate(baseline_config(scale=scale, l1_prefetcher=True),
                      spec, plan, seed=seed)
        rows.append({
            "workload": wname,
            "perf_ratio_on_vs_off": on.performance() / off.performance(),
            "prefetch_fills": on.system.prefetch_fills,
            "extra_llc_accesses": (on.system.llc_accesses
                                   - off.system.llc_accesses),
        })
    return rows


def test_ablation_prefetcher(run_once, record_result):
    rows = run_once(ablate_prefetcher)
    record_result("ablation_prefetcher", rows,
                  title="Ablation: L1-D stride prefetcher")
    for r in rows:
        assert r["prefetch_fills"] > 0
        # timeliness is idealized, so it must not regress much; the
        # traces' residual-miss semantics mean gains are modest too
        assert r["perf_ratio_on_vs_off"] > 0.9
