"""Estimator acceptance benchmark: fig10 in estimate and auto modes.

Three runs of the fig10 scale-out grid with quick sampling:

1. all-simulate (ground truth, timed per point),
2. all-estimate (must be >= 100x faster per point, zero fallbacks),
3. auto (triage: estimate everywhere, simulate only points outside the
   validated envelope or near the shared-vs-SILO decision boundary).

Auto must reproduce the all-simulate per-workload shared-vs-SILO
verdicts exactly while actually simulating fewer than half the grid.
The measured ratios land in ``BENCH_estimator.json``.
"""

import time

from conftest import write_bench_json
from repro.core.config import EVALUATED_SYSTEMS
from repro.experiments.performance import fig10_scaleout
from repro.sim import engine as sim_engine
from repro.sim.sampling import PRESETS

PLAN = PRESETS["quick"]


def _timed_fig10(engine):
    start = time.perf_counter()
    with sim_engine.use_engine(engine):
        rows = fig10_scaleout(plan=PLAN)
    return rows, time.perf_counter() - start


def _silo_verdicts(rows):
    """Per-workload shared-vs-SILO verdict: does SILO beat the shared
    baseline?"""
    return {r["workload"]: r["normalized_performance"] > 1.0
            for r in rows
            if r["system"] == "SILO" and r["workload"] != "Geomean"}


def test_estimator_speedup_and_auto_triage(bench_extra):
    sim = sim_engine.RunEngine(jobs=1)
    sim_rows, sim_s = _timed_fig10(sim)
    points = sim.unique_points
    assert points == len(EVALUATED_SYSTEMS) * 5
    assert sim.executed == points

    est = sim_engine.RunEngine(jobs=1, mode="estimate")
    est_rows, est_s = _timed_fig10(est)
    assert est.estimated == est.unique_points == points
    assert est.estimate_fallbacks == 0
    speedup = sim_s / est_s

    auto = sim_engine.RunEngine(jobs=1, mode="auto")
    auto_rows, auto_s = _timed_fig10(auto)
    assert auto.unique_points == points
    simulated_fraction = auto.executed / points

    sim_verdicts = _silo_verdicts(sim_rows)
    payload = {
        "schema": "silo-repro-bench-estimator/1",
        "figure": "fig10",
        "sampling": "quick",
        "grid_points": points,
        "simulate_s": round(sim_s, 3),
        "estimate_s": round(est_s, 4),
        "simulate_per_point_s": round(sim_s / points, 4),
        "estimate_per_point_s": round(est_s / points, 6),
        "estimate_speedup": round(speedup, 1),
        "auto_s": round(auto_s, 3),
        "auto_simulated_points": auto.executed,
        "auto_estimated_points": auto.estimated,
        "auto_boundary_simulations": auto.auto_boundary_simulations,
        "auto_simulated_fraction": round(simulated_fraction, 3),
        "silo_verdicts": {w: bool(v) for w, v in sim_verdicts.items()},
    }
    write_bench_json("BENCH_estimator.json", payload)
    bench_extra(payload)

    # acceptance: >= 100x per fig10 point in pure estimate mode
    assert speedup >= 100.0, \
        "estimate mode only %.1fx faster than simulate" % speedup
    # acceptance: auto reproduces every shared-vs-SILO verdict while
    # simulating less than half the grid
    assert _silo_verdicts(auto_rows) == sim_verdicts
    assert simulated_fraction < 0.5, \
        "auto mode simulated %.0f%% of the grid" \
        % (100 * simulated_fraction)
    # estimate rows carry real numbers, not NaN placeholders
    assert all(r["normalized_performance"] > 0 for r in est_rows)
