"""Related-work comparison (Sec. VIII): Victim Replication vs SILO.

The paper: "D-NUCA designs ... are fundamentally limited by the small
capacity of nearby banks on a planar die. SILO circumvents [this] by
providing core-private die-stacked DRAM vaults with hundreds of MBs."
This bench quantifies the claim.
"""

from repro.experiments.noc_traffic import dnuca_comparison


def test_dnuca_comparison(run_once, record_result):
    rows = run_once(dnuca_comparison,
                    workloads=["web_search", "mapreduce"])
    record_result("dnuca", rows, title="D-NUCA (Victim Replication) vs "
                  "SILO (normalized to Baseline)")
    for r in rows:
        # nearby-bank replication cannot substitute for private capacity
        assert r["silo"] > r["victim_replication"] + 0.05
        # and VR itself must not regress the baseline
        assert r["victim_replication"] > 0.97
