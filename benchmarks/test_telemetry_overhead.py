"""Observability overhead benchmark: what do the v2 layers cost?

Three timed variants of the same run (16 cores, scale 64, seed 7):

1. **off** -- no observation at all (the baseline every figure pays),
2. **telemetry** -- windowed sampler at a CI-realistic interval
   (5000 events),
3. **profile** -- the hierarchical self-profiler, which wraps every
   subsystem seam and therefore pays real per-call overhead (recorded
   honestly, never gated).

All variants must stay bit-identical to the baseline -- observation
only reads simulator state.  The telemetry gate is deliberately loose
(median slowdown under 50%): the sampler runs once per interleave
round so its honest cost is ~10-20% at this window density, but
shared CI runners jitter hard on sub-second phases.  Everything lands
in ``BENCH_telemetry.json`` (repo root and ``benchmarks/results/``).
"""

from statistics import median

from repro.core.systems import system_config
from repro.obs.session import observe
from repro.sim.driver import simulate
from repro.sim.sampling import SamplingPlan
from repro.workloads.scaleout import SCALEOUT_WORKLOADS

NUM_CORES = 16
SCALE = 64
SEED = 7
PLAN = SamplingPlan(20_000, 30_000)
REPS = 5
TELEMETRY_EVERY = 5000

SPEC = SCALEOUT_WORKLOADS["web_search"]


def _run_off():
    return simulate(system_config("silo", num_cores=NUM_CORES,
                                  scale=SCALE), SPEC, PLAN, seed=SEED)


def _run_telemetry():
    with observe(telemetry_every=TELEMETRY_EVERY):
        return _run_off()


def _run_profile():
    with observe(profile=True):
        return _run_off()


def _fingerprint(result):
    return (result.performance(), result.level_counts(),
            result.stats_snapshot(), result.latency_percentiles())


def test_telemetry_overhead(bench_extra, write_bench):
    variants = {"off": _run_off, "telemetry": _run_telemetry,
                "profile": _run_profile}
    eps = {name: [] for name in variants}
    results = {}
    for _ in range(REPS):            # interleaved: same machine state
        for name, fn in variants.items():
            result = fn()
            eps[name].append(result.events_per_sec())
            results[name] = result

    baseline = _fingerprint(results["off"])
    for name in ("telemetry", "profile"):
        assert _fingerprint(results[name]) == baseline

    medians = {name: median(vals) for name, vals in eps.items()}
    record = {
        "schema": "silo-repro-bench-telemetry/1",
        "num_cores": NUM_CORES, "scale": SCALE, "seed": SEED,
        "reps": REPS, "telemetry_every": TELEMETRY_EVERY,
        "plan": {"warmup_events": PLAN.warmup_events,
                 "measure_events": PLAN.measure_events},
        "variants": {
            name: {
                "events_per_sec": round(medians[name]),
                "slowdown": round(medians["off"] / medians[name], 3),
            }
            for name in variants
        },
        "telemetry_windows": len(results["telemetry"].telemetry.windows),
    }
    write_bench("BENCH_telemetry.json", record)
    bench_extra({"telemetry_overhead": record})

    print()
    for name, r in record["variants"].items():
        print("obs %-10s %9d ev/s  (%.2fx the baseline cost)"
              % (name, r["events_per_sec"], r["slowdown"]))

    assert results["telemetry"].telemetry.windows
    # the sampler ticks once per interleave round; the loose bound
    # absorbs shared-runner jitter on top of its ~10-20% honest cost
    assert record["variants"]["telemetry"]["slowdown"] <= 1.5
