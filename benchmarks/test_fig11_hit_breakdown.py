"""Fig. 11: LLC hits/misses, Baseline vs SILO."""

from repro.experiments.performance import fig11_hit_breakdown


def test_fig11_hit_breakdown(run_once, record_result):
    rows = run_once(fig11_hit_breakdown)
    record_result("fig11", rows, title="Fig. 11: LLC access breakdown "
                  "(fractions)")
    by_key = {(r["workload"], r["system"]): r for r in rows}
    for wl in ("Web Search", "Data Serving", "Web Frontend",
               "MapReduce", "SAT Solver"):
        base = by_key[(wl, "Baseline")]
        silo = by_key[(wl, "SILO")]
        # SILO reduces off-chip misses (paper: 8-67% reduction)
        assert silo["offchip_misses"] < base["offchip_misses"]
        reduction = 1 - silo["offchip_misses"] / base["offchip_misses"]
        assert 0.05 <= reduction <= 0.85
        # the majority of SILO's hits are local (paper: 63-91%)
        hits = silo["local_hits"] + silo["remote_hits"]
        assert silo["local_hits"] / hits >= 0.60
