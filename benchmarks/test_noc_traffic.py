"""Sec. V-D quantified: SILO reduces on-chip interconnect traffic."""

from repro.experiments.noc_traffic import noc_traffic


def test_noc_traffic(run_once, record_result):
    rows = run_once(noc_traffic, workloads=["web_search", "mapreduce"])
    record_result("noc_traffic", rows, title="NOC link traversals per "
                  "kilo-instruction")
    for r in rows:
        # local vault hits never enter the mesh: SILO must cut traffic
        assert r["silo_links_per_ki"] < r["baseline_links_per_ki"]
        assert r["reduction"] > 0.3
