"""Fig. 3: breakdown of accessed LLC blocks (reads / writes without
sharing / RW-shared writes)."""

from repro.experiments.sharing import fig3_breakdown


def test_fig3_sharing(run_once, record_result):
    rows = run_once(fig3_breakdown)
    record_result("fig3", rows,
                  title="Fig. 3: LLC access breakdown (%)")
    for r in rows:
        total = (r["reads_pct"] + r["writes_nosharing_pct"]
                 + r["writes_rwsharing_pct"])
        assert abs(total - 100.0) < 1e-6
        # paper: RW-sharing is limited (<= ~5%) across the suite
        assert r["writes_rwsharing_pct"] < 10.0
        assert r["reads_pct"] > 50.0
    rw = {r["workload"]: r["writes_rwsharing_pct"] for r in rows}
    # MapReduce and SAT Solver have negligible RW-sharing
    assert rw["MapReduce"] < rw["Web Search"]
    assert rw["SAT Solver"] < rw["Web Search"]
