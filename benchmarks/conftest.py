"""Shared benchmark plumbing.

Each benchmark runs its experiment exactly once (``benchmark.pedantic``
with one round: these are scientific reproductions, not microbenchmarks
to be re-sampled), prints the regenerated table, and writes it to
``benchmarks/results/<id>.txt`` so EXPERIMENTS.md can reference it.

Every benchmark also runs under a metered :class:`repro.sim.engine.
RunEngine`; per-figure wall clock and engine throughput (driven
events/sec, cache hits/misses) are collected and written to
``benchmarks/results/BENCH_engine.json`` -- and mirrored to the repo
root -- at the end of the session, so CI can archive one
machine-readable performance record per run.
"""

import json
import os
import time

import pytest

from repro.experiments.common import render_table
from repro.sim import engine as sim_engine

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_ENGINE_PATH = os.path.join(RESULTS_DIR, "BENCH_engine.json")


def write_bench_json(name, payload):
    """Write a BENCH_*.json record to ``benchmarks/results/`` and to the
    repo root (the root copy is the one CI diffs and READMEs link)."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    for directory in (RESULTS_DIR, REPO_ROOT):
        path = os.path.join(directory, name)
        with open(path, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")

#: node name -> {"wall_clock_s": ..., "engine": snapshot, ...extras}
_ENGINE_RECORDS = {}


@pytest.fixture(autouse=True)
def metered_engine(request):
    """Install a fresh run engine for each benchmark and record its
    wall clock + throughput counters for BENCH_engine.json.  Caching is
    off by default so every figure reports real simulation time; set
    $REPRO_JOBS to benchmark parallel fan-out."""
    engine = sim_engine.RunEngine(jobs=sim_engine.jobs_from_env(),
                                  cache=None)
    start = time.perf_counter()
    with sim_engine.use_engine(engine):
        yield engine
    record = _ENGINE_RECORDS.setdefault(request.node.name, {})
    record["wall_clock_s"] = round(time.perf_counter() - start, 3)
    record["engine"] = engine.snapshot()


@pytest.fixture
def bench_extra(request):
    """Let a benchmark attach extra measurements (e.g. speedup phases)
    to its BENCH_engine.json record."""
    def _add(payload):
        _ENGINE_RECORDS.setdefault(request.node.name, {}).update(payload)
    return _add


def pytest_sessionfinish(session, exitstatus):
    if not _ENGINE_RECORDS:
        return
    payload = {
        "schema": "silo-repro-bench-engine/1",
        "host_cpu_count": os.cpu_count(),
        "jobs_env": os.environ.get("REPRO_JOBS") or None,
        "figures": _ENGINE_RECORDS,
    }
    write_bench_json("BENCH_engine.json", payload)


@pytest.fixture
def write_bench():
    """Write a benchmark's own BENCH_*.json record to both locations
    (``benchmarks/results/`` and the repo root)."""
    return write_bench_json


@pytest.fixture
def record_result():
    def _record(name, rows, title=None, columns=None):
        os.makedirs(RESULTS_DIR, exist_ok=True)
        text = render_table(rows, columns=columns, title=title or name)
        path = os.path.join(RESULTS_DIR, name + ".txt")
        with open(path, "w") as f:
            f.write(text + "\n")
        print()
        print(text)
        return rows
    return _record


@pytest.fixture
def run_once(benchmark):
    """Run an experiment function exactly once under the benchmark
    timer."""
    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)
    return _run
