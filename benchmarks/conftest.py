"""Shared benchmark plumbing.

Each benchmark runs its experiment exactly once (``benchmark.pedantic``
with one round: these are scientific reproductions, not microbenchmarks
to be re-sampled), prints the regenerated table, and writes it to
``benchmarks/results/<id>.txt`` so EXPERIMENTS.md can reference it.
"""

import os

import pytest

from repro.experiments.common import render_table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def record_result():
    def _record(name, rows, title=None, columns=None):
        os.makedirs(RESULTS_DIR, exist_ok=True)
        text = render_table(rows, columns=columns, title=title or name)
        path = os.path.join(RESULTS_DIR, name + ".txt")
        with open(path, "w") as f:
            f.write(text + "\n")
        print()
        print(text)
        return rows
    return _record


@pytest.fixture
def run_once(benchmark):
    """Run an experiment function exactly once under the benchmark
    timer."""
    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)
    return _run
