"""Fig. 14: performance on enterprise workloads."""

from repro.experiments.performance import fig14_enterprise


def test_fig14_enterprise(run_once, record_result):
    rows = run_once(fig14_enterprise)
    record_result("fig14", rows, title="Fig. 14: enterprise performance "
                  "(normalized to Baseline)")
    perf = {(r["workload"], r["system"]): r["normalized_performance"]
            for r in rows}
    g = {s: perf[("Geomean", s)]
         for s in ("Baseline+DRAM$", "SILO", "SILO-CO", "Vaults-Sh")}
    # paper: SILO +11%, DRAM$ small gains, Vaults-Sh a ~9% slowdown
    assert g["SILO"] > 1.0
    assert g["Vaults-Sh"] < 1.0
    assert 1.0 < g["Baseline+DRAM$"] < g["SILO"] + 0.05
    # DRAM$ helps here though it did not on scale-out (Sec. VII-D1)
    for wl in ("TPCC", "Oracle", "Zeus"):
        assert perf[(wl, "Baseline+DRAM$")] > 1.0
