"""Cross-validation bench: analytic vs simulated hit rates, and the
technology-to-Table-II link."""

from repro.experiments.validation import (validate_hit_rates,
                                          validate_technology_link)


def test_validation(run_once, record_result):
    rows = run_once(validate_hit_rates, workloads=["web_search",
                                                   "mapreduce"])
    rows += validate_technology_link()
    record_result("validation", rows, title="Cross-validation: analytic "
                  "vs simulated; technology vs Table II")
    for r in rows:
        if "simulated" in r:
            assert r["simulated"] <= r["analytic_upper_bound"] + 0.05
        if "matches" in r:
            assert r["matches"]
