"""Off-chip traffic (bytes per kilo-instruction), Baseline vs SILO."""

from repro.experiments.noc_traffic import offchip_traffic


def test_offchip_traffic(run_once, record_result):
    rows = run_once(offchip_traffic,
                    workloads=["web_search", "sat_solver"])
    record_result("offchip_traffic", rows, title="Off-chip traffic "
                  "(bytes per kilo-instruction)")
    for r in rows:
        # the high vault hit rate slashes off-chip traffic (the
        # mechanism behind Fig. 13's energy saving)
        assert r["reduction"] > 0.3
