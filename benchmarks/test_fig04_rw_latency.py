"""Fig. 4: performance impact of slower access to RW-shared blocks."""

from repro.experiments.sharing import fig4_rw_latency


def test_fig4_rw_latency(run_once, record_result):
    rows = run_once(fig4_rw_latency)
    record_result("fig4", rows, title="Fig. 4: perf with 1x-4x latency "
                  "on RW-shared blocks (normalized to 1x)")
    by_wl = {}
    for r in rows:
        by_wl.setdefault(r["workload"], {})[
            r["rw_latency_multiplier"]] = r["normalized_performance"]
    for wl, curve in by_wl.items():
        assert curve[1.0] == 1.0
        # paper: doubling RW-shared latency costs 0-8%; 4x costs at
        # most ~10%
        assert curve[2.0] > 0.90
        assert curve[4.0] > 0.85
