"""Fig. 2: performance sensitivity to LLC latency at several
capacities (geomean isocurves)."""

from repro.experiments.sensitivity import fig2_latency


def test_fig2_latency(run_once, record_result):
    rows = run_once(fig2_latency)
    record_result("fig2", rows, title="Fig. 2: geomean perf vs LLC "
                  "latency increase (normalized to 8MB @ +0%)")
    by_cap = {}
    for r in rows:
        by_cap.setdefault(r["capacity_mb"], {})[
            r["latency_increase_pct"]] = r["normalized_performance"]
    for cap, curve in by_cap.items():
        vals = [curve[k] for k in sorted(curve)]
        # performance decays monotonically with latency
        assert all(b <= a + 1e-9 for a, b in zip(vals, vals[1:]))
    # the paper's headline: large capacity at high latency loses most
    # of its edge over the small fast baseline
    big = by_cap[max(by_cap)]
    assert big[100] < big[0]
    assert big[100] - 1.0 < 0.5 * (big[0] - 1.0)
