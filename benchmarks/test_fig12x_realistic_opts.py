"""Extension: realistic MissMap / SRAM directory cache vs the ideal
limit study of Fig. 12."""

from repro.experiments.optimizations import fig12x_realistic_optimizations


def test_fig12x_realistic_opts(run_once, record_result):
    rows = run_once(fig12x_realistic_optimizations,
                    workloads=["web_search", "data_serving"])
    record_result("fig12x", rows, title="Extension: realistic vs ideal "
                  "SILO optimizations (normalized to NoOpt)")
    by_key = {(r["workload"], r["variant"]): r["normalized_performance"]
              for r in rows}
    for wl in ("Web Search", "Data Serving"):
        # realistic structures capture part of the ideal gain and never
        # hurt (the MissMap is conservative, the dir cache additive)
        assert by_key[(wl, "MissMap")] >= 0.995
        assert by_key[(wl, "SRAM-DirCache")] >= 0.995
        both = by_key[(wl, "MissMap+SRAM-DirCache")]
        ideal = by_key[(wl, "Ideal-Both")]
        assert 0.995 <= both <= ideal + 0.01
