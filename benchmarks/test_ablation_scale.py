"""Methodology validation: the scale divisor preserves relative
results.

The simulator divides cache capacities and workload footprints by the
same factor (DESIGN.md).  If that methodology is sound, SILO's speedup
must be stable across scale factors.  This ablation measures the
headline speedup at two scales.
"""

from repro.core.systems import baseline_config, silo_config
from repro.sim.driver import simulate
from repro.experiments.common import resolve_plan, DEFAULT_SEED
from repro.workloads.scaleout import SCALEOUT_WORKLOADS


def ablate_scale(plan=None, seed=DEFAULT_SEED,
                 workloads=("web_search", "mapreduce"),
                 scales=(64, 128)):
    plan = resolve_plan(plan)
    rows = []
    for wname in workloads:
        spec = SCALEOUT_WORKLOADS[wname]
        row = {"workload": wname}
        for scale in scales:
            base = simulate(baseline_config(scale=scale), spec, plan,
                            seed=seed)
            silo = simulate(silo_config(scale=scale), spec, plan,
                            seed=seed)
            row["speedup_scale%d" % scale] = (silo.performance()
                                              / base.performance())
        rows.append(row)
    return rows


def test_ablation_scale(run_once, record_result):
    rows = run_once(ablate_scale)
    record_result("ablation_scale", rows,
                  title="Ablation: SILO speedup across scale factors")
    for r in rows:
        a = r["speedup_scale64"]
        b = r["speedup_scale128"]
        # relative results stable within ~10% across a 2x scale change
        assert abs(a - b) / a < 0.12, r
