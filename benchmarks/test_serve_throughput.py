"""Job-server acceptance benchmark: warm-path throughput and RTT.

Four phases against one in-process :class:`repro.serve.JobServer`
backed by a disk cache:

1. cold submit -- one real simulation over HTTP;
2. in-flight dedup burst -- 8 concurrent identical POSTs must execute
   exactly one simulation;
3. sustained warm-path throughput -- the memoized response path must
   hold at least 100 req/s;
4. warm HTTP RTT vs direct cache replay -- serving a cached summary
   over loopback HTTP must cost at most 2x what the same replay costs
   through a local ``RunEngine`` + ``RunCache``.

Everything measured lands in ``BENCH_serve.json`` (results dir + repo
root) so CI archives one machine-readable serving-performance record
per run.
"""

import asyncio
import concurrent.futures
import http.client
import json
import os
import statistics
import threading
import time

from repro.core.systems import system_config
from repro.serve.client import ServerClient
from repro.serve.server import JobServer
from repro.sim.engine import RunCache, RunEngine, RunRequest
from repro.sim.sampling import SamplingPlan
from repro.workloads.scaleout import SCALEOUT_WORKLOADS

PLAN = SamplingPlan(1500, 800)
SCALE = 512

WARM_REQUESTS = 300
RTT_SAMPLES = 50
BURST = 8


def _point(seed=7):
    return RunRequest.point(
        system_config("baseline", num_cores=4, scale=SCALE),
        SCALEOUT_WORKLOADS["web_search"], PLAN, seed)


class ServerThread:
    """Run a JobServer on its own event-loop thread so synchronous
    clients can talk to it from the benchmark."""

    def __init__(self, engine, **kwargs):
        self.engine = engine
        self.kwargs = kwargs
        self.server = None

    def __enter__(self):
        started = threading.Event()

        def run():
            self.loop = asyncio.new_event_loop()
            asyncio.set_event_loop(self.loop)
            self.server = JobServer(self.engine, port=0, **self.kwargs)
            self.loop.run_until_complete(self.server.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        assert started.wait(10), "server failed to start"
        return self.server

    def __exit__(self, *exc):
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()
        return False


def _persistent_post_rtts(server, request, n):
    """RTT for ``n`` warm POST /runs on one keep-alive connection."""
    payload = json.dumps({"request": request.canonical(),
                          "priority": "interactive",
                          "wait": True, "format": "pickle"}
                         ).encode("utf-8")
    conn = http.client.HTTPConnection(server.host, server.port,
                                      timeout=60)
    rtts = []
    try:
        for _ in range(n):
            t0 = time.perf_counter()
            conn.request("POST", "/runs", body=payload,
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            body = resp.read()
            rtts.append(time.perf_counter() - t0)
            assert resp.status == 200, body
    finally:
        conn.close()
    return rtts


def test_serve_warm_throughput_and_dedup(tmp_path, write_bench):
    cache = RunCache(str(tmp_path))
    engine = RunEngine(jobs=1, cache=cache)

    with ServerThread(engine) as server:
        client = ServerClient(server.url)

        # -- phase 1: cold submit (one real simulation) -----------------
        t0 = time.perf_counter()
        doc, dedup = client.submit(_point(seed=7))
        cold_s = time.perf_counter() - t0
        assert dedup == "none"
        assert engine.executed == 1
        key = doc["key"]

        # -- phase 2: in-flight dedup burst -----------------------------
        burst_req = _point(seed=8)
        with concurrent.futures.ThreadPoolExecutor(BURST) as pool:
            results = list(pool.map(
                lambda _i: client.submit(burst_req), range(BURST)))
        assert engine.executed == 2       # the burst ran exactly once
        burst_dedups = sorted(d for _doc, d in results)
        assert burst_dedups.count("none") == 1

        # -- phase 3: sustained warm throughput (memoized path) ---------
        warm_rtts = _persistent_post_rtts(server, _point(seed=7),
                                          WARM_REQUESTS)
        warm_wall = sum(warm_rtts)
        req_per_s = WARM_REQUESTS / warm_wall
        assert engine.executed == 2       # all memo hits, no new sims

        # -- phase 4: warm RTT vs direct cache replay -------------------
        http_rtts = _persistent_post_rtts(server, _point(seed=7),
                                          RTT_SAMPLES)
        replay_engine = RunEngine(jobs=1, cache=cache)
        direct = []
        for _ in range(RTT_SAMPLES):
            t0 = time.perf_counter()
            replay_engine.run([_point(seed=7)])
            direct.append(time.perf_counter() - t0)
        assert replay_engine.executed == 0
        assert replay_engine.cache_hits == RTT_SAMPLES

        rtt_ms = statistics.median(http_rtts) * 1e3
        direct_ms = statistics.median(direct) * 1e3

        health = client.health()
        assert client.status(key)["status"] == "complete"

    write_bench("BENCH_serve.json", {
        "schema": "silo-repro-bench-serve/1",
        "host_cpu_count": os.cpu_count(),
        "cold_submit_s": round(cold_s, 3),
        "inflight_burst": {
            "posts": BURST,
            "executed": 1,
            "dedup_ratio": round((BURST - 1) / BURST, 4),
        },
        "warm": {
            "requests": WARM_REQUESTS,
            "wall_s": round(warm_wall, 3),
            "req_per_s": round(req_per_s, 1),
        },
        "warm_rtt_ms": {
            "median": round(rtt_ms, 3),
            "p90": round(sorted(http_rtts)[int(0.9 * RTT_SAMPLES)]
                         * 1e3, 3),
        },
        "direct_replay_ms": {"median": round(direct_ms, 3)},
        "rtt_over_replay": round(rtt_ms / direct_ms, 3),
        "server": health,
    })

    assert req_per_s >= 100.0
    assert rtt_ms <= 2.0 * direct_ms
