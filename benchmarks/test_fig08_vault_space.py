"""Fig. 8: vault capacity vs access latency design space."""

from repro.experiments.technology import fig8_vault_space


def test_fig8_vault_space(run_once, record_result):
    rows = run_once(fig8_vault_space)
    frontier = [r for r in rows if r["pareto"] or r["selected"]]
    record_result("fig8", frontier, title="Fig. 8: vault design space "
                  "(Pareto frontier + selected points)")
    selected = {r["selected"]: r for r in rows if r["selected"]}
    lo = selected["latency-optimized"]
    co = selected["capacity-optimized"]
    # Sec. IV-D: 256 MB @ ~5.5 ns latency-optimized; 512 MB at ~+80%
    assert 256 <= lo["capacity_mb"] <= 320
    assert 4.5 <= lo["latency_ns"] <= 6.5
    assert co["capacity_mb"] >= 500
    assert 1.6 <= co["latency_ns"] / lo["latency_ns"] <= 2.0
    # the scatter spans the whole capacity range of the figure
    caps = [r["capacity_mb"] for r in rows]
    assert min(caps) <= 16 and max(caps) >= 500
