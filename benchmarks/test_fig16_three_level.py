"""Fig. 16: 3-level cache hierarchies."""

from repro.experiments.performance import fig16_three_level


def test_fig16_three_level(run_once, record_result):
    rows = run_once(fig16_three_level)
    record_result("fig16", rows, title="Fig. 16: 3-level hierarchies "
                  "(normalized to 3level-SRAM)")
    perf = {(r["workload"], r["system"]): r["normalized_performance"]
            for r in rows}
    # paper: eDRAM modestly beats SRAM; SILO beats both on geomean,
    # with the biggest gains on MapReduce / SAT Solver
    assert perf[("Geomean", "3level-eDRAM")] > 1.0
    assert perf[("Geomean", "3level-SILO")] > 1.0
    assert perf[("MapReduce", "3level-SILO")] > \
        perf[("MapReduce", "3level-eDRAM")]
