"""Fig. 1: performance sensitivity to LLC capacity at fixed latency."""

from repro.experiments.sensitivity import fig1_capacity


def test_fig1_capacity(run_once, record_result):
    rows = run_once(fig1_capacity)
    record_result("fig1", rows, title="Fig. 1: perf vs LLC capacity "
                  "(normalized to 8MB)")
    by_wl = {}
    for r in rows:
        by_wl.setdefault(r["workload"], {})[r["capacity_mb"]] = \
            r["normalized_performance"]
    # paper shape: marginal gain to 64 MB, bigger beyond
    for wl, caps in by_wl.items():
        assert caps[8] == 1.0
        assert caps[1024] >= caps[8]
    # Web Search's knee is late: most of its gain arrives after 512 MB
    ws = by_wl["Web Search"]
    assert ws[1024] - ws[512] > 0.5 * (ws[1024] - ws[8])
