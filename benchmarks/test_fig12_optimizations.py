"""Fig. 12: SILO design optimizations in the limit."""

from repro.experiments.optimizations import fig12_optimizations


def test_fig12_optimizations(run_once, record_result):
    rows = run_once(fig12_optimizations)
    record_result("fig12", rows, title="Fig. 12: SILO optimization "
                  "variants (normalized to NoOpt)")
    by_key = {(r["workload"], r["variant"]): r["normalized_performance"]
              for r in rows}
    for wl in ("Web Search", "Data Serving", "Web Frontend",
               "MapReduce", "SAT Solver"):
        assert by_key[(wl, "NoOpt")] == 1.0
        both = by_key[(wl, "LocalMP+DirCache")]
        # ideal optimizations help, but modestly (the paper concludes
        # they do not justify their cost)
        assert 1.0 <= both <= 1.25
        assert by_key[(wl, "LocalMP")] <= both + 1e-9
        assert by_key[(wl, "DirCache")] <= both + 1e-9
