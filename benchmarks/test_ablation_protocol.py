"""Ablation: MOESI vs MESI for SILO's private hierarchy (Sec. V-B).

The paper chooses MOESI because main memory is the point of coherence
in an all-private hierarchy: with MESI, every read of a remotely-dirty
block first writes it back to memory.  This ablation measures both the
writeback traffic and the performance cost of dropping the O state.
"""

from repro.core.systems import silo_config
from repro.sim.driver import simulate
from repro.experiments.common import resolve_plan, DEFAULT_SCALE, DEFAULT_SEED
from repro.workloads.scaleout import SCALEOUT_WORKLOADS, SCALEOUT_LABELS


def ablate_protocol(plan=None, scale=DEFAULT_SCALE, seed=DEFAULT_SEED,
                    workloads=("data_serving", "web_frontend")):
    """RW-sharing-heavy workloads show the O state's value."""
    plan = resolve_plan(plan)
    rows = []
    for wname in workloads:
        spec = SCALEOUT_WORKLOADS[wname]
        results = {}
        for proto in ("moesi", "mesi"):
            results[proto] = simulate(
                silo_config(scale=scale, protocol=proto), spec, plan,
                seed=seed)
        moesi, mesi = results["moesi"], results["mesi"]
        rows.append({
            "workload": SCALEOUT_LABELS.get(wname, wname),
            "mesi_vs_moesi_perf": (mesi.performance()
                                   / moesi.performance()),
            "moesi_mem_writes": moesi.system.memory.writes,
            "mesi_mem_writes": mesi.system.memory.writes,
        })
    return rows


def test_ablation_protocol(run_once, record_result):
    rows = run_once(ablate_protocol)
    record_result("ablation_protocol", rows,
                  title="Ablation: MESI vs MOESI under SILO")
    for r in rows:
        # dropping the O state can only add writebacks and lose (or
        # match) performance
        assert r["mesi_mem_writes"] >= r["moesi_mem_writes"]
        assert r["mesi_vs_moesi_perf"] <= 1.02
