"""Fast-path acceptance benchmark: tiered shadow-filter throughput.

Three measurements on the fig10 system configurations (16 cores,
scale 64, seed 7):

1. **Headline regime** -- an L1-resident stress workload (code and
   heap both fit the scaled L1s, zipf alpha 2.5) where nearly every
   event is a retirable hit streak.  The kernel must deliver >= 2x
   measure-phase events/sec on both the shared-LLC baseline and the
   SILO private-vault organisation (locally it clears 3x; the CI gate
   absorbs runner noise).
2. **Honest suite numbers** -- the full fig10 scale-out set.  The
   tiered kernel now stays *engaged* on every workload (combined
   retired fraction 0.6-0.9, tier 2 catching the vault hits the
   L1-only kernel had to bail on), where the PR-5 kernel bailed at
   0-2% retired.  The on/off ratio, however, honestly sits at
   0.85-0.97: server workloads are miss-bound, the true-miss
   reference path dominates wall clock (DESIGN.md Sec. 2f), and the
   same optimisation pass that built tier 2 also made that shared
   miss path ~1.3-1.5x faster in absolute terms -- which raises both
   sides of the ratio's denominator.  These ratios are recorded with
   per-tier fractions and asserted only against a coarse regression
   floor; the per-workload engagement (>= 50% retired on miss-bound
   streams) is asserted for real.
3. **Same-host seed comparison** -- the suite events/sec recorded by
   the seed benchmark run (committed ``BENCH_fastpath.json`` history,
   same container) next to today's, so the absolute suite speedup
   from the miss-path work is visible and nobody mistakes the stress
   headline for a suite-wide on/off claim.

All regimes re-assert the invariant that really matters: results with
the kernel on are bit-identical to the reference loop.

Timings are medians over interleaved on/off repetitions (the host
jitters by +-10-20%; back-to-back pairs see the same machine state).
Everything is written to ``benchmarks/results/BENCH_fastpath.json``
(mirrored to the repo root).
"""

import os
from math import prod
from statistics import median

from repro.core.systems import system_config
from repro.cores.perf_model import CoreParams
from repro.sim.driver import simulate
from repro.sim.sampling import SamplingPlan
from repro.workloads.base import CodeSpec, RegionSpec, WorkloadSpec
from repro.workloads.scaleout import SCALEOUT_WORKLOADS

NUM_CORES = 16
SCALE = 64
SEED = 7
CHUNK = 1000
PLAN = SamplingPlan(60_000, 20_000)
REPS = 5
SUITE_PLAN = SamplingPlan(20_000, 10_000)
SUITE_REPS = 3

#: Everything fits the scaled L1s (64 blocks = 0.125 MB / scale) and
#: the zipf skew keeps the hot set resident, so the event stream is
#: almost entirely retirable hit streaks -- the regime the kernel is
#: built for (an L1-resident phase of a server loop).
STRESS_SPEC = WorkloadSpec(
    name="l1_resident_stress",
    code=CodeSpec(size_mb=0.125, alpha=2.0),
    regions=(
        RegionSpec("heap", 0.125, "zipf", "private", 1.0,
                   alpha=2.5, write_fraction=0.3),
    ),
    core=CoreParams(),
)

#: The full fig10 scale-out set (the suite the title is about).
SUITE_WORKLOADS = ("web_search", "data_serving", "web_frontend",
                   "mapreduce", "sat_solver")

#: Suite reference-loop events/sec recorded by the seed benchmark on
#: this same container (committed BENCH_fastpath.json before this PR;
#: the seed suite covered two workloads).  Only comparable on the
#: recording host -- the vs_seed block is provenance, never a gate.
SEED_SUITE_EPS_OFF = {"web_search": 532_557, "web_frontend": 869_521}

#: Every suite workload is miss-bound by the paper's standards (>= 10%
#: true L1 miss rate at scale 64); the engagement gate applies to all.
RETIRED_FRACTION_FLOOR = 0.5

#: Coarse on/off regression canary for the suite: the engaged tiered
#: kernel measures 0.85-0.97x locally (see module docstring); a drop
#: below this floor means the kernel machinery regressed, not jitter.
SUITE_SPEEDUP_FLOOR = 0.6


def _measure(config, spec, plan, reps):
    """Interleaved on/off repetitions; returns (median eps on,
    median eps off, one on/off result pair for the identity pin)."""
    on, off = [], []
    pair = None
    for _ in range(reps):
        fast = simulate(config, spec, plan, seed=SEED, chunk=CHUNK,
                        fastpath=True)
        slow = simulate(config, spec, plan, seed=SEED, chunk=CHUNK,
                        fastpath=False)
        on.append(fast.events_per_sec())
        off.append(slow.events_per_sec())
        pair = (fast, slow)
    return median(on), median(off), pair


def _identical(fast, slow):
    return (fast.performance() == slow.performance()
            and fast.level_counts() == slow.level_counts()
            and fast.stats_snapshot() == slow.stats_snapshot()
            and fast.latency_percentiles() == slow.latency_percentiles())


def test_fastpath_speedup(bench_extra, write_bench):
    record = {"num_cores": NUM_CORES, "scale": SCALE, "seed": SEED,
              "chunk": CHUNK, "reps": REPS,
              "plan": {"warmup_events": PLAN.warmup_events,
                       "measure_events": PLAN.measure_events},
              "suite_plan": {
                  "warmup_events": SUITE_PLAN.warmup_events,
                  "measure_events": SUITE_PLAN.measure_events,
                  "reps": SUITE_REPS},
              "stress": {}, "suite": {}, "vs_seed": {}}

    stress_ratios = {}
    for name in ("baseline", "silo"):
        config = system_config(name, num_cores=NUM_CORES, scale=SCALE)
        eps_on, eps_off, (fast, slow) = _measure(
            config, STRESS_SPEC, PLAN, REPS)
        assert _identical(fast, slow)
        filt = fast.system.shadow_filter
        assert filt is not None and not filt.bailed
        ratio = eps_on / eps_off
        stress_ratios[name] = ratio
        record["stress"][name] = {
            "events_per_sec_on": round(eps_on),
            "events_per_sec_off": round(eps_off),
            "speedup": round(ratio, 3),
            "retired_fraction": round(
                filt.retired_events / filt.total_events, 4),
        }

    # Full fig10 suite: the tiered kernel stays engaged (per-tier
    # fractions recorded per workload); the on/off ratio is recorded
    # with only a coarse regression floor -- see the module docstring
    # for why parity-ish is the honest outcome here.
    suite_ratios = {}
    for wl in SUITE_WORKLOADS:
        spec = SCALEOUT_WORKLOADS[wl]
        config = system_config("silo", num_cores=NUM_CORES,
                               scale=SCALE)
        eps_on, eps_off, (fast, slow) = _measure(
            config, spec, SUITE_PLAN, SUITE_REPS)
        assert _identical(fast, slow)
        summary = fast.system.shadow_filter.summary()
        ratio = eps_on / eps_off
        suite_ratios[wl] = ratio
        record["suite"][wl] = {
            "events_per_sec_on": round(eps_on),
            "events_per_sec_off": round(eps_off),
            "speedup": round(ratio, 3),
            "bailed": summary["bailed"],
            "bail_reason": summary["bail_reason"],
            "retired_fraction": round(summary["retired_fraction"], 4),
            "retired_fraction_t1": round(
                summary["retired_fraction_t1"], 4),
            "retired_fraction_t2": round(
                summary["retired_fraction_t2"], 4),
            "mean_streak": round(summary["mean_streak"], 2),
        }
        if wl in SEED_SUITE_EPS_OFF:
            seed_eps = SEED_SUITE_EPS_OFF[wl]
            record["vs_seed"][wl] = {
                "seed_events_per_sec_off": seed_eps,
                "events_per_sec_off": round(eps_off),
                "events_per_sec_on": round(eps_on),
                "off_vs_seed": round(eps_off / seed_eps, 3),
                "on_vs_seed": round(eps_on / seed_eps, 3),
            }
    record["suite_geomean_speedup"] = round(
        prod(suite_ratios.values()) ** (1 / len(suite_ratios)), 3)

    write_bench("BENCH_fastpath.json", record)
    bench_extra({"fastpath": record})

    print()
    for name, r in record["stress"].items():
        print("stress  %-8s  %8d -> %8d ev/s  (%.2fx, retired %.1f%%)"
              % (name, r["events_per_sec_off"], r["events_per_sec_on"],
                 r["speedup"], 100 * r["retired_fraction"]))
    for wl, r in record["suite"].items():
        print("suite   %-12s %8d -> %8d ev/s  (%.2fx, retired "
              "%.1f%% = t1 %.1f%% + t2 %.1f%%, bailed=%s)"
              % (wl, r["events_per_sec_off"], r["events_per_sec_on"],
                 r["speedup"], 100 * r["retired_fraction"],
                 100 * r["retired_fraction_t1"],
                 100 * r["retired_fraction_t2"], r["bailed"]))
    for wl, r in record["vs_seed"].items():
        print("vs_seed %-12s %8d -> %8d ev/s off (%.2fx vs seed)"
              % (wl, r["seed_events_per_sec_off"],
                 r["events_per_sec_off"], r["off_vs_seed"]))

    # The headline gate: >= 2x on both organisations (locally ~3x;
    # the slack absorbs shared-runner noise).
    assert stress_ratios["baseline"] >= 2.0
    assert stress_ratios["silo"] >= 2.0
    # The engagement gate: the tiered kernel must retire >= 50% of the
    # stream on every (miss-bound) fig10 workload instead of bailing.
    for wl, r in record["suite"].items():
        assert not r["bailed"], wl
        assert r["retired_fraction"] >= RETIRED_FRACTION_FLOOR, (
            wl, r["retired_fraction"])
    # The regression canary: engaged parity-ish, never a collapse.
    for wl, ratio in suite_ratios.items():
        assert ratio >= SUITE_SPEEDUP_FLOOR, (wl, ratio)
