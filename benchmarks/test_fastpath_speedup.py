"""Fast-path acceptance benchmark: shadow-filter kernel throughput.

Two measurements on the fig10 system configurations (16 cores,
scale 64, seed 7):

1. **Headline regime** -- an L1-resident stress workload (code and
   heap both fit the scaled L1s, zipf alpha 2.5) where nearly every
   event is a retirable hit streak.  The kernel must deliver >= 2x
   measure-phase events/sec on both the shared-LLC baseline and the
   SILO private-vault organisation (locally it clears 3x; the CI gate
   absorbs runner noise).
2. **Honest suite numbers** -- two fig10 scale-out workloads, where
   18-40% true L1 miss rates cap any hit-batching kernel well below
   2x (Amdahl; see DESIGN.md Sec. 2f).  These ratios are recorded,
   not asserted: the bail-out keeps them at parity, and the point of
   publishing them is that nobody mistakes the stress headline for a
   suite-wide claim.

Both regimes also re-assert the only invariant that really matters:
results with the kernel on are bit-identical to the reference loop.

Timings are medians over interleaved on/off repetitions (the host
jitters by +-10-20%; back-to-back pairs see the same machine state).
Everything is written to ``benchmarks/results/BENCH_fastpath.json``
(mirrored to the repo root).
"""

import os
from statistics import median

from repro.core.systems import system_config
from repro.cores.perf_model import CoreParams
from repro.sim.driver import simulate
from repro.sim.sampling import SamplingPlan
from repro.workloads.base import CodeSpec, RegionSpec, WorkloadSpec
from repro.workloads.scaleout import SCALEOUT_WORKLOADS

NUM_CORES = 16
SCALE = 64
SEED = 7
CHUNK = 1000
PLAN = SamplingPlan(60_000, 20_000)
REPS = 5

#: Everything fits the scaled L1s (64 blocks = 0.125 MB / scale) and
#: the zipf skew keeps the hot set resident, so the event stream is
#: almost entirely retirable hit streaks -- the regime the kernel is
#: built for (an L1-resident phase of a server loop).
STRESS_SPEC = WorkloadSpec(
    name="l1_resident_stress",
    code=CodeSpec(size_mb=0.125, alpha=2.0),
    regions=(
        RegionSpec("heap", 0.125, "zipf", "private", 1.0,
                   alpha=2.5, write_fraction=0.3),
    ),
    core=CoreParams(),
)

SUITE_WORKLOADS = ("web_search", "web_frontend")


def _measure(config, spec, plan, reps):
    """Interleaved on/off repetitions; returns (median eps on,
    median eps off, one on/off result pair for the identity pin)."""
    on, off = [], []
    pair = None
    for _ in range(reps):
        fast = simulate(config, spec, plan, seed=SEED, chunk=CHUNK,
                        fastpath=True)
        slow = simulate(config, spec, plan, seed=SEED, chunk=CHUNK,
                        fastpath=False)
        on.append(fast.events_per_sec())
        off.append(slow.events_per_sec())
        pair = (fast, slow)
    return median(on), median(off), pair


def _identical(fast, slow):
    return (fast.performance() == slow.performance()
            and fast.level_counts() == slow.level_counts()
            and fast.stats_snapshot() == slow.stats_snapshot()
            and fast.latency_percentiles() == slow.latency_percentiles())


def test_fastpath_speedup(bench_extra, write_bench):
    record = {"num_cores": NUM_CORES, "scale": SCALE, "seed": SEED,
              "chunk": CHUNK, "reps": REPS,
              "plan": {"warmup_events": PLAN.warmup_events,
                       "measure_events": PLAN.measure_events},
              "stress": {}, "suite": {}}

    stress_ratios = {}
    for name in ("baseline", "silo"):
        config = system_config(name, num_cores=NUM_CORES, scale=SCALE)
        eps_on, eps_off, (fast, slow) = _measure(
            config, STRESS_SPEC, PLAN, REPS)
        assert _identical(fast, slow)
        filt = fast.system.shadow_filter
        assert filt is not None and not filt.bailed
        ratio = eps_on / eps_off
        stress_ratios[name] = ratio
        record["stress"][name] = {
            "events_per_sec_on": round(eps_on),
            "events_per_sec_off": round(eps_off),
            "speedup": round(ratio, 3),
            "retired_fraction": round(
                filt.retired_events / filt.total_events, 4),
        }

    # Honest fig10-suite ratios: parity is the expected outcome (the
    # kernel bails on miss-bound streams); recorded, never asserted.
    suite_plan = SamplingPlan(20_000, 10_000)
    for wl in SUITE_WORKLOADS:
        spec = SCALEOUT_WORKLOADS[wl]
        config = system_config("silo", num_cores=NUM_CORES,
                               scale=SCALE)
        eps_on, eps_off, (fast, slow) = _measure(
            config, spec, suite_plan, 3)
        assert _identical(fast, slow)
        filt = fast.system.shadow_filter
        record["suite"][wl] = {
            "events_per_sec_on": round(eps_on),
            "events_per_sec_off": round(eps_off),
            "speedup": round(eps_on / eps_off, 3),
            "bailed": filt.bailed,
            "retired_fraction": round(
                filt.retired_events / max(filt.total_events, 1), 4),
        }

    write_bench("BENCH_fastpath.json", record)
    bench_extra({"fastpath": record})

    print()
    for name, r in record["stress"].items():
        print("stress  %-8s  %8d -> %8d ev/s  (%.2fx, retired %.1f%%)"
              % (name, r["events_per_sec_off"], r["events_per_sec_on"],
                 r["speedup"], 100 * r["retired_fraction"]))
    for wl, r in record["suite"].items():
        print("suite   %-12s %8d -> %8d ev/s  (%.2fx, bailed=%s)"
              % (wl, r["events_per_sec_off"], r["events_per_sec_on"],
                 r["speedup"], r["bailed"]))

    # The headline gate: >= 2x on both organisations (locally ~3x;
    # the slack absorbs shared-runner noise).
    assert stress_ratios["baseline"] >= 2.0
    assert stress_ratios["silo"] >= 2.0
