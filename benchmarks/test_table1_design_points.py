"""Table I: latency- vs capacity-optimized vault design points."""

from repro.experiments.technology import table1_design_points


def test_table1_design_points(run_once, record_result):
    rows = run_once(table1_design_points)
    record_result("table1", rows,
                  title="Table I: latency- vs capacity-optimized vaults")
    by_metric = {r["metric"]: r for r in rows}
    # paper: area efficiency 1.74x, tiles 0.25x, latency 1.8x
    assert 1.5 <= by_metric["area_efficiency"]["capacity_optimized"] <= 2.2
    assert by_metric["number_of_tiles"]["capacity_optimized"] < 0.5
    assert 1.6 <= by_metric["access_latency"]["capacity_optimized"] <= 2.0
