"""Fig. 15: 4-core SPEC'06 mixes, SILO vs baseline."""

from repro.experiments.mixes import fig15_spec_mixes


def test_fig15_spec_mixes(run_once, record_result):
    rows = run_once(fig15_spec_mixes)
    record_result("fig15", rows, title="Fig. 15: SPEC'06 mixes, SILO "
                  "speedup over Baseline")
    speedup = {r["mix"]: r["silo_speedup"] for r in rows}
    # paper: gains on all mixes (up to +47%, average +28%); mixes with
    # memory-intensive apps (mcf/lbm/milc/astar) gain most
    mem_mixes = [speedup[m] for m in ("mix3", "mix5", "mix7", "mix8")]
    compute_mixes = [speedup[m] for m in ("mix4", "mix9")]
    assert min(mem_mixes) > max(compute_mixes)
    assert speedup["geomean"] > 1.05
    assert max(speedup.values()) < 1.8
    for m, s in speedup.items():
        assert s > 0.92, "mix %s regressed: %.3f" % (m, s)
