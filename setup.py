"""Legacy setup shim: the offline environment lacks the `wheel` package,
so editable installs use the setup.py develop path."""

from setuptools import setup

setup()
